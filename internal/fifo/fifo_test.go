package fifo_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/fifo"
	"repro/internal/sim"
)

func TestBasicWriteRead(t *testing.T) {
	k := sim.NewKernel("t")
	f := fifo.New[string](k, "f", 2)
	var got []string
	k.Thread("p", func(p *sim.Process) {
		f.Write("a")
		f.Write("b")
		got = append(got, f.Read(), f.Read())
	})
	k.Run(sim.RunForever)
	if fmt.Sprint(got) != "[a b]" {
		t.Errorf("got %v", got)
	}
}

func TestBlockingWriteWakesOnRead(t *testing.T) {
	k := sim.NewKernel("t")
	f := fifo.New[int](k, "f", 1)
	var wrote2 sim.Time = -1
	k.Thread("writer", func(p *sim.Process) {
		f.Write(1)
		f.Write(2) // blocks until the reader frees the cell at 30ns
		wrote2 = k.Now()
	})
	k.Thread("reader", func(p *sim.Process) {
		p.Wait(30 * sim.NS)
		if f.Read() != 1 {
			t.Error("wrong first value")
		}
	})
	k.Run(sim.RunForever)
	k.Shutdown()
	if wrote2 != 30*sim.NS {
		t.Errorf("second write completed at %v, want 30ns", wrote2)
	}
}

func TestBlockingReadWakesOnWrite(t *testing.T) {
	k := sim.NewKernel("t")
	f := fifo.New[int](k, "f", 4)
	var readAt sim.Time = -1
	k.Thread("reader", func(p *sim.Process) {
		if f.Read() != 9 {
			t.Error("wrong value")
		}
		readAt = k.Now()
	})
	k.Thread("writer", func(p *sim.Process) {
		p.Wait(12 * sim.NS)
		f.Write(9)
	})
	k.Run(sim.RunForever)
	if readAt != 12*sim.NS {
		t.Errorf("read completed at %v, want 12ns", readAt)
	}
}

func TestTryVariants(t *testing.T) {
	k := sim.NewKernel("t")
	f := fifo.New[int](k, "f", 1)
	k.Thread("p", func(p *sim.Process) {
		if _, ok := f.TryRead(); ok {
			t.Error("TryRead on empty succeeded")
		}
		if !f.TryWrite(5) {
			t.Error("TryWrite on empty failed")
		}
		if f.TryWrite(6) {
			t.Error("TryWrite on full succeeded")
		}
		if v, ok := f.TryRead(); !ok || v != 5 {
			t.Errorf("TryRead = %d,%v", v, ok)
		}
	})
	k.Run(sim.RunForever)
}

func TestSizeAndFlags(t *testing.T) {
	k := sim.NewKernel("t")
	f := fifo.New[int](k, "f", 3)
	k.Thread("p", func(p *sim.Process) {
		if !f.IsEmpty() || f.IsFull() || f.Size() != 0 || f.Depth() != 3 {
			t.Error("fresh FIFO state wrong")
		}
		f.Write(1)
		f.Write(2)
		if f.Size() != 2 || f.IsEmpty() || f.IsFull() {
			t.Error("partially filled state wrong")
		}
		f.Write(3)
		if !f.IsFull() {
			t.Error("full flag wrong")
		}
	})
	k.Run(sim.RunForever)
}

func TestWrapAround(t *testing.T) {
	k := sim.NewKernel("t")
	f := fifo.New[int](k, "f", 3)
	const n = 50
	var got []int
	k.Thread("writer", func(p *sim.Process) {
		for i := 0; i < n; i++ {
			f.Write(i)
			p.Wait(sim.NS)
		}
	})
	k.Thread("reader", func(p *sim.Process) {
		for i := 0; i < n; i++ {
			got = append(got, f.Read())
			p.Wait(2 * sim.NS)
		}
	})
	k.Run(sim.RunForever)
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestEventsNotified(t *testing.T) {
	k := sim.NewKernel("t")
	f := fifo.New[int](k, "f", 1)
	var events []string
	k.MethodNoInit("onNE", func(p *sim.Process) {
		events = append(events, fmt.Sprintf("ne@%v", k.Now()))
	}, f.NotEmpty())
	k.MethodNoInit("onNF", func(p *sim.Process) {
		events = append(events, fmt.Sprintf("nf@%v", k.Now()))
	}, f.NotFull())
	k.Thread("p", func(p *sim.Process) {
		p.Wait(5 * sim.NS)
		f.Write(1)
		p.Wait(5 * sim.NS)
		f.Read()
	})
	k.Run(sim.RunForever)
	if fmt.Sprint(events) != "[ne@5ns nf@10ns]" {
		t.Errorf("events = %v", events)
	}
}

func TestZeroDepthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for depth 0")
		}
	}()
	fifo.New[int](sim.NewKernel("t"), "f", 0)
}

func TestAccessOutsideProcessPanics(t *testing.T) {
	k := sim.NewKernel("t")
	f := fifo.New[int](k, "f", 1)
	defer func() {
		if recover() == nil {
			t.Error("no panic for Write outside a process")
		}
	}()
	f.Write(1)
}

func TestSyncFIFOSynchronizesCaller(t *testing.T) {
	k := sim.NewKernel("t")
	f := fifo.NewSync[int](k, "f", 4)
	k.Thread("writer", func(p *sim.Process) {
		p.Inc(40 * sim.NS)
		f.Write(1) // must sync: the write happens at global 40ns
		if k.Now() != 40*sim.NS || !p.Synchronized() {
			t.Errorf("after Write: Now=%v sync=%v", k.Now(), p.Synchronized())
		}
	})
	k.Run(sim.RunForever)
}

func TestSyncFIFOTimingMatchesWaitStyle(t *testing.T) {
	// inc+SyncFIFO must give the same dates as wait+FIFO (the TDless
	// equivalence the paper relies on in §IV-C).
	type res struct{ r []sim.Time }
	ref := func() []sim.Time {
		k := sim.NewKernel("ref")
		f := fifo.New[int](k, "f", 2)
		var dates []sim.Time
		k.Thread("w", func(p *sim.Process) {
			for i := 0; i < 8; i++ {
				f.Write(i)
				p.Wait(7 * sim.NS)
			}
		})
		k.Thread("r", func(p *sim.Process) {
			for i := 0; i < 8; i++ {
				f.Read()
				dates = append(dates, k.Now())
				p.Wait(11 * sim.NS)
			}
		})
		k.Run(sim.RunForever)
		return dates
	}()
	got := func() []sim.Time {
		k := sim.NewKernel("sync")
		f := fifo.NewSync[int](k, "f", 2)
		var dates []sim.Time
		k.Thread("w", func(p *sim.Process) {
			for i := 0; i < 8; i++ {
				f.Write(i)
				p.Inc(7 * sim.NS)
			}
		})
		k.Thread("r", func(p *sim.Process) {
			for i := 0; i < 8; i++ {
				f.Read()
				dates = append(dates, p.LocalTime())
				p.Inc(11 * sim.NS)
			}
		})
		k.Run(sim.RunForever)
		return dates
	}()
	_ = res{}
	if fmt.Sprint(ref) != fmt.Sprint(got) {
		t.Errorf("SyncFIFO dates %v != reference %v", got, ref)
	}
}

func TestQuickFIFOOrder(t *testing.T) {
	prop := func(depthRaw uint8, perRaw []byte) bool {
		depth := int(depthRaw%8) + 1
		const n = 30
		k := sim.NewKernel("q")
		f := fifo.New[int](k, "f", depth)
		ok := true
		k.Thread("w", func(p *sim.Process) {
			for i := 0; i < n; i++ {
				f.Write(i)
				b := byte(3)
				if len(perRaw) > 0 {
					b = perRaw[i%len(perRaw)]
				}
				p.Wait(sim.Time(b%5) * sim.NS)
			}
		})
		k.Thread("r", func(p *sim.Process) {
			for i := 0; i < n; i++ {
				if f.Read() != i {
					ok = false
				}
			}
		})
		k.Run(sim.RunForever)
		k.Shutdown()
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
