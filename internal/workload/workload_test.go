package workload_test

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/workload"
)

func TestWordAtDeterministic(t *testing.T) {
	for i := 0; i < 100; i++ {
		if workload.WordAt(42, i) != workload.WordAt(42, i) {
			t.Fatal("WordAt not deterministic")
		}
	}
	if workload.WordAt(1, 0) == workload.WordAt(2, 0) {
		t.Error("different seeds give identical first word (suspicious)")
	}
}

func TestWordAtSpread(t *testing.T) {
	// Cheap distribution check: over 4096 words, all four bytes of the
	// word must take many distinct values.
	seen := [4]map[byte]bool{{}, {}, {}, {}}
	for i := 0; i < 4096; i++ {
		w := workload.WordAt(7, i)
		for b := 0; b < 4; b++ {
			seen[b][byte(w>>(8*b))] = true
		}
	}
	for b, m := range seen {
		if len(m) < 200 {
			t.Errorf("byte %d takes only %d values", b, len(m))
		}
	}
}

func TestChecksumOrderSensitive(t *testing.T) {
	a := workload.Checksum(workload.Checksum(0, 1), 2)
	b := workload.Checksum(workload.Checksum(0, 2), 1)
	if a == b {
		t.Error("checksum insensitive to order")
	}
}

func TestRates(t *testing.T) {
	c := workload.Constant(5 * sim.NS)
	if c(0) != 5*sim.NS || c(99) != 5*sim.NS {
		t.Error("Constant wrong")
	}
	s := workload.Steps(1*sim.NS, 2*sim.NS)
	if s(0) != 1*sim.NS || s(1) != 2*sim.NS || s(2) != 1*sim.NS {
		t.Error("Steps wrong")
	}
	b := workload.Bursty(4, 1*sim.NS, 50*sim.NS)
	if b(0) != 1*sim.NS || b(3) != 50*sim.NS || b(7) != 50*sim.NS {
		t.Error("Bursty wrong")
	}
}

func TestQuickRandomRateBounded(t *testing.T) {
	prop := func(seed int64, i uint16) bool {
		r := workload.Random(seed, 5, 10*sim.NS)
		d := r(int(i))
		return d >= 0 && d <= 40*sim.NS && d%(10*sim.NS) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
