// Package workload provides deterministic workload generators for the
// evaluation (paper §IV): block streams of words and per-word rate
// schedules. Everything is a pure function of a seed so the two modes of a
// dual-mode run see identical inputs.
package workload

import "repro/internal/sim"

// Word is the data unit moved through the FIFOs, as in the paper's
// benchmark (1000 blocks of 1000 words).
type Word = uint32

// WordAt returns the i-th word of the stream with the given seed, via a
// SplitMix64-style mix: deterministic, stateless, well distributed.
func WordAt(seed int64, i int) Word {
	z := uint64(seed) + uint64(i)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return Word(z ^ (z >> 31))
}

// Checksum folds a word into a running checksum; sinks use it to prove
// data integrity across modes.
func Checksum(sum uint64, w Word) uint64 {
	sum ^= uint64(w)
	sum *= 0x100000001b3 // FNV-1a prime
	return sum
}

// Rate gives the annotation period before/after handling word i.
type Rate func(i int) sim.Time

// Constant returns a fixed per-word period.
func Constant(d sim.Time) Rate {
	return func(int) sim.Time { return d }
}

// Steps cycles through the given periods word by word ("varying data
// rates" in §IV-B).
func Steps(periods ...sim.Time) Rate {
	return func(i int) sim.Time { return periods[i%len(periods)] }
}

// Random returns periods uniformly drawn from {0, step, 2*step, ...,
// (levels-1)*step}, deterministically from the seed.
func Random(seed int64, levels int, step sim.Time) Rate {
	return func(i int) sim.Time {
		return sim.Time(WordAt(seed, i)%Word(levels)) * step
	}
}

// Bursty emits burstLen words at perWord spacing, then one gap period.
func Bursty(burstLen int, perWord, gap sim.Time) Rate {
	return func(i int) sim.Time {
		if (i+1)%burstLen == 0 {
			return gap
		}
		return perWord
	}
}
