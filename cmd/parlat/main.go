// Command parlat measures inter-shard latency: the wall-clock round-trip
// of one word across a ShardedFIFO request bridge and back over a
// response bridge, client and server on separate shards, while
// background load streams words between further shard pairs — the
// coordinator analogue of an inter-core ping/pong latency harness. The
// load lives on its own shard pairs deliberately: a global-barrier
// scheduler couples the measured pair to that unrelated work (every trip
// waits for rounds that also flush every load bridge and dispatch every
// working load shard, a cost that grows with system size), while the
// frontier-driven scheduler keeps each ping exchange local to the two
// shards and two bridges involved. That coupling is exactly the
// coordination cost the harness exists to expose.
//
// Each mode runs the identical model twice: once under the legacy
// all-shard barrier scheduler (Coordinator.SetBarrier) and once under
// the default asynchronous frontier-driven one. Per-round-trip wall
// times are reported as p50/p99/max microseconds; simulated dates must
// be identical between the two schedulers (dates_equal) — the latency
// difference is pure coordination cost, never model behaviour.
//
// Output is a human table, or one JSON document with -json (recorded in
// BENCH_parlat.json).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/sim"
)

// modeJSON is one scheduler's measurement.
type modeJSON struct {
	Mode       string  `json:"mode"`
	RoundTrips int     `json:"round_trips"`
	P50us      float64 `json:"p50_us"`
	P99us      float64 `json:"p99_us"`
	MaxUs      float64 `json:"max_us"`
	WallMS     float64 `json:"wall_ms"`
	// Coordinator telemetry for the reported run: rendezvous/barrier
	// dispatches, kernel advances, bridge exchanges.
	Rounds   uint64 `json:"rounds"`
	Advances uint64 `json:"advances"`
	Flushes  uint64 `json:"flushes"`
}

// reportJSON is the -json document.
type reportJSON struct {
	Benchmark     string     `json:"benchmark"`
	RoundTrips    int        `json:"round_trips"`
	LoadWords     int        `json:"load_words"`
	LoadPairs     int        `json:"load_pairs"`
	Warmup        int        `json:"warmup_discarded"`
	GOMAXPROCS    int        `json:"gomaxprocs"`
	Modes         []modeJSON `json:"modes"`
	DatesEqual    bool       `json:"dates_equal"`
	AsyncP99Lower bool       `json:"async_p99_lower"`
}

// run executes the ping/pong model once and returns the per-round-trip
// wall times and the client's dated completion log (the determinism
// witness compared across schedulers).
func run(n, load, pairs int, barrier bool) (lat []time.Duration, dates []sim.Time, st par.Stats) {
	kc := sim.NewKernel("client")
	ks := sim.NewKernel("server")
	req := core.NewSharded[int](kc, ks, "req", 8)
	rsp := core.NewSharded[int](ks, kc, "rsp", 8)

	lat = make([]time.Duration, 0, n)
	dates = make([]sim.Time, 0, n)
	kc.Thread("client", func(p *sim.Process) {
		for i := 0; i < n; i++ {
			p.Inc(10 * sim.NS)
			t0 := time.Now()
			req.Writer().Write(i)
			v := rsp.Reader().Read()
			lat = append(lat, time.Since(t0))
			if v != i^0x5a {
				panic(fmt.Sprintf("parlat: round trip %d returned %d", i, v))
			}
			dates = append(dates, p.LocalTime())
		}
	})
	ks.Thread("server", func(p *sim.Process) {
		for i := 0; i < n; i++ {
			v := req.Reader().Read()
			p.Inc(2 * sim.NS)
			rsp.Writer().Write(v ^ 0x5a)
		}
	})
	mkLoad := func(k *sim.Kernel, tag string, f *core.ShardedFIFO[int], peer *sim.Kernel) {
		k.Thread("load.src."+tag, func(p *sim.Process) {
			for i := 0; i < load; i++ {
				p.Inc(3 * sim.NS)
				f.Writer().Write(i)
			}
		})
		peer.Thread("load.sink."+tag, func(p *sim.Process) {
			for i := 0; i < load; i++ {
				f.Reader().Read()
				p.Inc(4 * sim.NS)
			}
		})
	}
	c := par.NewCoordinator()
	c.AddShard(kc)
	c.AddShard(ks)
	for _, b := range []*core.ShardedFIFO[int]{req, rsp} {
		c.AddBridge(b)
	}
	// Background load: `pairs` shard pairs stream words at each other in
	// both directions, each pair on its own two shards. The load does
	// not touch the measured pair at all — which is the point: a
	// global-barrier scheduler still couples every trip to it (each
	// round flushes every bridge and dispatches every working shard),
	// while the frontier-driven scheduler keeps the ping exchange local.
	for pi := 0; pi < pairs; pi++ {
		kla := sim.NewKernel(fmt.Sprintf("load.%d.a", pi))
		klb := sim.NewKernel(fmt.Sprintf("load.%d.b", pi))
		ldAB := core.NewSharded[int](kla, klb, fmt.Sprintf("load.%d.ab", pi), 64)
		ldBA := core.NewSharded[int](klb, kla, fmt.Sprintf("load.%d.ba", pi), 64)
		mkLoad(kla, fmt.Sprintf("%d.ab", pi), ldAB, klb)
		mkLoad(klb, fmt.Sprintf("%d.ba", pi), ldBA, kla)
		c.AddShard(kla)
		c.AddShard(klb)
		c.AddBridge(ldAB)
		c.AddBridge(ldBA)
	}
	c.SetBarrier(barrier)
	c.Run(sim.RunForever)
	st = c.Stats()
	c.Shutdown()
	return lat, dates, st
}

// stats reduces round-trip samples (after warmup discard) to the report
// quantiles via the shared nearest-rank helper.
func stats(lat []time.Duration, warmup int) (p50, p99, max float64) {
	if warmup >= len(lat) {
		warmup = 0
	}
	us := make([]float64, 0, len(lat)-warmup)
	for _, d := range lat[warmup:] {
		us = append(us, float64(d.Nanoseconds())/1e3)
	}
	q := metrics.Quantiles(us, 0.5, 0.99, 1.0)
	return q[0], q[1], q[2]
}

func datesEqual(a, b []sim.Time) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func main() { os.Exit(run1(os.Args[1:])) }

func run1(args []string) int {
	fs := flag.NewFlagSet("parlat", flag.ExitOnError)
	var (
		n       = fs.Int("n", 2000, "measured round trips per scheduler")
		load    = fs.Int("load", 100000, "background words per load stream (sized so the load spans the whole measured run)")
		pairs   = fs.Int("pairs", 4, "background load shard pairs (system size beyond the measured pair)")
		warmup  = fs.Int("warmup", 50, "leading round trips discarded from the stats")
		best     = fs.Int("best", 3, "runs per scheduler; the lowest-p99 run is reported")
		jsonOut  = fs.Bool("json", false, "emit one JSON document on stdout")
		simtrace = fs.String("simtrace", "", "write the final run's scheduler timeline as Chrome trace JSON to this file")
	)
	fs.Parse(args)
	if *simtrace != "" {
		par.SetTraceCapture(4096)
	}

	// One discarded warm-up run per scheduler before any measurement: the
	// first run in a fresh process absorbs allocator growth, and whichever
	// scheduler measured first would otherwise be charged for it.
	run(*n/4+1, *load/4+1, *pairs, true)
	run(*n/4+1, *load/4+1, *pairs, false)

	measure := func(barrier bool, name string) (modeJSON, []sim.Time) {
		var bestM modeJSON
		var bestDates []sim.Time
		for r := 0; r < *best; r++ {
			start := time.Now()
			lat, dates, st := run(*n, *load, *pairs, barrier)
			wall := time.Since(start)
			p50, p99, max := stats(lat, *warmup)
			m := modeJSON{Mode: name, RoundTrips: len(lat), P50us: p50, P99us: p99, MaxUs: max,
				WallMS: float64(wall.Microseconds()) / 1e3,
				Rounds: st.Rounds, Advances: st.Advances, Flushes: st.Flushes}
			if r == 0 || m.P99us < bestM.P99us {
				bestM, bestDates = m, dates
			}
		}
		return bestM, bestDates
	}

	barrierM, barrierDates := measure(true, "barrier")
	asyncM, asyncDates := measure(false, "async")
	eq := datesEqual(barrierDates, asyncDates)

	rep := reportJSON{
		Benchmark:  "parlat",
		RoundTrips: *n, LoadWords: *load, LoadPairs: *pairs, Warmup: *warmup,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Modes:         []modeJSON{barrierM, asyncM},
		DatesEqual:    eq,
		AsyncP99Lower: asyncM.P99us < barrierM.P99us,
	}
	if *jsonOut {
		if err := campaign.WriteJSON(os.Stdout, rep); err != nil {
			fmt.Fprintf(os.Stderr, "parlat: %v\n", err)
			return 1
		}
	} else {
		fmt.Printf("Inter-shard round-trip latency, %d trips under load (%d pairs x %d words/stream), GOMAXPROCS %d:\n\n",
			*n, *pairs, *load, rep.GOMAXPROCS)
		for _, m := range rep.Modes {
			fmt.Printf("%-8s  p50 %8.1fus  p99 %8.1fus  max %8.1fus  (wall %8.3fms, rounds %d, advances %d, flushes %d)\n",
				m.Mode, m.P50us, m.P99us, m.MaxUs, m.WallMS, m.Rounds, m.Advances, m.Flushes)
		}
		fmt.Printf("\nsimulated dates identical across schedulers: %v\n", eq)
	}
	if !eq {
		fmt.Fprintln(os.Stderr, "parlat: ACCURACY VIOLATION: schedulers disagree on dates")
		return 1
	}
	if *simtrace != "" {
		if err := dumpTrace(*simtrace); err != nil {
			fmt.Fprintf(os.Stderr, "parlat: simtrace: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "parlat: scheduler timeline written to %s (open in chrome://tracing or ui.perfetto.dev)\n", *simtrace)
	}
	return 0
}

// dumpTrace writes the most recent captured scheduler timeline to path.
func dumpTrace(path string) error {
	tl := par.LastTrace()
	if tl == nil {
		return fmt.Errorf("no timeline captured")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tl.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
