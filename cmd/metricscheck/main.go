// Command metricscheck validates a Prometheus text exposition and diffs
// its metric family names against a checked-in catalog. CI scrapes a
// live simd /metrics into a file and runs
//
//	metricscheck -catalog metrics.catalog -in /tmp/metrics.txt
//
// exit 0 means the exposition parsed (TYPE/HELP lines, sample grammar,
// histogram suffixes) and the family set matches the catalog exactly;
// any malformed line, missing family or unlisted family is reported and
// exits 1. That turns "someone renamed a metric" from a silent dashboard
// breakage into a red CI check.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/metrics"
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	fs := flag.NewFlagSet("metricscheck", flag.ExitOnError)
	catalog := fs.String("catalog", "metrics.catalog", "checked-in metric family catalog (one name per line, # comments)")
	in := fs.String("in", "-", "exposition to validate (- = stdin)")
	fs.Parse(args)

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metricscheck: %v\n", err)
			return 2
		}
		defer f.Close()
		r = f
	}
	got, err := metrics.ParseExposition(r)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metricscheck: exposition invalid: %v\n", err)
		return 1
	}
	want, err := readCatalog(*catalog)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metricscheck: %v\n", err)
		return 2
	}

	missing, extra := diff(want, got)
	for _, name := range missing {
		fmt.Fprintf(os.Stderr, "metricscheck: MISSING from exposition: %s\n", name)
	}
	for _, name := range extra {
		fmt.Fprintf(os.Stderr, "metricscheck: NOT IN CATALOG: %s (update metrics.catalog)\n", name)
	}
	if len(missing)+len(extra) > 0 {
		return 1
	}
	fmt.Printf("metricscheck: exposition valid, %d families match %s\n", len(got), *catalog)
	return 0
}

// readCatalog loads the sorted family list, skipping blanks and #
// comments.
func readCatalog(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var names []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		names = append(names, line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Strings(names)
	return names, nil
}

// diff returns catalog names absent from the exposition and exposition
// names absent from the catalog; both inputs are sorted.
func diff(want, got []string) (missing, extra []string) {
	w := map[string]bool{}
	for _, n := range want {
		w[n] = true
	}
	g := map[string]bool{}
	for _, n := range got {
		g[n] = true
		if !w[n] {
			extra = append(extra, n)
		}
	}
	for _, n := range want {
		if !g[n] {
			missing = append(missing, n)
		}
	}
	return missing, extra
}
