package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netlist"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/store"
)

// TestCatalogMatchesCode registers every subsystem on a fresh registry
// (exactly what cmd/simd does at startup), writes the exposition and
// checks it against the checked-in metrics.catalog — so adding or
// renaming a metric anywhere fails here until the catalog is updated.
func TestCatalogMatchesCode(t *testing.T) {
	reg := metrics.NewRegistry()
	sim.EnableMetrics(reg)
	core.EnableBridgeMetrics(reg)
	par.EnableMetrics(reg)
	netlist.EnableMetrics(reg)
	campaign.NewMetrics(reg)
	store.NewMetrics(reg)
	defer sim.EnableMetrics(nil)
	defer core.EnableBridgeMetrics(nil)
	defer par.EnableMetrics(nil)
	defer netlist.EnableMetrics(nil)

	expo := filepath.Join(t.TempDir(), "metrics.txt")
	f, err := os.Create(expo)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.WritePrometheus(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if code := run([]string{"-catalog", "../../metrics.catalog", "-in", expo}); code != 0 {
		t.Fatalf("metricscheck exit %d; the registered families diverge from metrics.catalog", code)
	}
}

// TestDiffDetectsDrift: a family missing from the exposition and one
// absent from the catalog both fail the check.
func TestDiffDetectsDrift(t *testing.T) {
	missing, extra := diff(
		[]string{"a_total", "b_total"},
		[]string{"b_total", "c_total"},
	)
	if len(missing) != 1 || missing[0] != "a_total" {
		t.Errorf("missing = %v, want [a_total]", missing)
	}
	if len(extra) != 1 || extra[0] != "c_total" {
		t.Errorf("extra = %v, want [c_total]", extra)
	}
}
