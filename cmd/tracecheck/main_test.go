package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTrace(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const refTrace = "10ns\tsrc\twrote 1\n20ns\tsink\tread 1\n30ns\tsink\tread 2\n"

// reordered: same entries, different emission order (decoupling effect).
const reorderedTrace = "30ns\tsink\tread 2\n10ns\tsrc\twrote 1\n20ns\tsink\tread 1\n"

// divergent: one date differs.
const divergentTrace = "10ns\tsrc\twrote 1\n20ns\tsink\tread 1\n31ns\tsink\tread 2\n"

func TestExitCodeIdentical(t *testing.T) {
	dir := t.TempDir()
	a := writeTrace(t, dir, "a.trace", refTrace)
	b := writeTrace(t, dir, "b.trace", reorderedTrace)
	var out, errBuf bytes.Buffer
	if code := run([]string{a, b}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d, want 0; stderr: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "identical") {
		t.Errorf("output: %q", out.String())
	}
}

func TestExitCodeDiffer(t *testing.T) {
	dir := t.TempDir()
	a := writeTrace(t, dir, "a.trace", refTrace)
	b := writeTrace(t, dir, "b.trace", divergentTrace)
	var out, errBuf bytes.Buffer
	if code := run([]string{a, b}, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(out.String(), "traces differ") {
		t.Errorf("output: %q", out.String())
	}
}

func TestExitCodeUsageAndIO(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{}, &out, &errBuf); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"only-one.trace"}, &out, &errBuf); code != 2 {
		t.Errorf("one arg: exit %d, want 2", code)
	}
	if code := run([]string{"-nope", "a", "b"}, &out, &errBuf); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	dir := t.TempDir()
	a := writeTrace(t, dir, "a.trace", refTrace)
	if code := run([]string{a, filepath.Join(dir, "missing.trace")}, &out, &errBuf); code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}
	bad := writeTrace(t, dir, "bad.trace", "not a trace line\n")
	if code := run([]string{a, bad}, &out, &errBuf); code != 2 {
		t.Errorf("unparsable file: exit %d, want 2", code)
	}
}

func TestJSONOutput(t *testing.T) {
	dir := t.TempDir()
	a := writeTrace(t, dir, "a.trace", refTrace)
	b := writeTrace(t, dir, "b.trace", reorderedTrace)
	c := writeTrace(t, dir, "c.trace", divergentTrace)

	var out, errBuf bytes.Buffer
	if code := run([]string{"-json", a, b}, &out, &errBuf); code != 0 {
		t.Fatalf("equal traces: exit %d", code)
	}
	var s summary
	if err := json.Unmarshal(out.Bytes(), &s); err != nil {
		t.Fatalf("bad JSON %q: %v", out.String(), err)
	}
	if !s.Equal || s.EntriesA != 3 || s.EntriesB != 3 || s.Diff != "" {
		t.Errorf("summary = %+v", s)
	}

	out.Reset()
	if code := run([]string{"-json", a, c}, &out, &errBuf); code != 1 {
		t.Fatalf("differing traces: exit %d, want 1", code)
	}
	if err := json.Unmarshal(out.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if s.Equal || s.Diff == "" {
		t.Errorf("summary = %+v", s)
	}
}
