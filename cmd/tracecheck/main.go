// Command tracecheck is the standalone §IV-A oracle: it reads two dated
// trace files (format: "date<TAB>process<TAB>message", as written by the
// trace package), reorders both by date and compares them. Exit status 0
// means the traces are identical after reordering — the model behaviour
// and timing match; 1 means they differ; 2 means usage or I/O error.
//
// Usage:
//
//	tracecheck reference.trace decoupled.trace
package main

import (
	"fmt"
	"os"

	"repro/internal/trace"
)

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <a.trace> <b.trace>")
		os.Exit(2)
	}
	a, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(2)
	}
	b, err := load(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(2)
	}
	if d := trace.Diff(a, b); d != "" {
		fmt.Printf("traces differ:\n%s\n", d)
		os.Exit(1)
	}
	fmt.Printf("traces identical after reordering (%d entries)\n", a.Len())
}

func load(path string) (*trace.Recorder, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Read(f)
}
