// Command tracecheck is the standalone §IV-A oracle: it reads two dated
// trace files (format: "date<TAB>process<TAB>message", as written by the
// trace package), reorders both by date and compares them. Exit status 0
// means the traces are identical after reordering — the model behaviour
// and timing match; 1 means they differ; 2 means usage or I/O error.
//
// With -json the verdict is emitted as a machine-readable summary
// ({"equal": ..., "entries_a": ..., "entries_b": ..., "diff": ...})
// instead of prose, for CI jobs and the campaign tooling.
//
// Usage:
//
//	tracecheck [-json] reference.trace decoupled.trace
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/trace"
)

// summary is the -json output document.
type summary struct {
	Equal    bool   `json:"equal"`
	EntriesA int    `json:"entries_a"`
	EntriesB int    `json:"entries_b"`
	Diff     string `json:"diff,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracecheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit a machine-readable JSON summary")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: tracecheck [-json] <a.trace> <b.trace>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	a, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "tracecheck:", err)
		return 2
	}
	b, err := load(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "tracecheck:", err)
		return 2
	}
	d := trace.Diff(a, b)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(summary{
			Equal:    d == "",
			EntriesA: a.Len(),
			EntriesB: b.Len(),
			Diff:     d,
		}); err != nil {
			fmt.Fprintln(stderr, "tracecheck:", err)
			return 2
		}
	} else if d != "" {
		fmt.Fprintf(stdout, "traces differ:\n%s\n", d)
	} else {
		fmt.Fprintf(stdout, "traces identical after reordering (%d entries)\n", a.Len())
	}
	if d != "" {
		return 1
	}
	return 0
}

func load(path string) (*trace.Recorder, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Read(f)
}
