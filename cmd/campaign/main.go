// Command campaign drives the campaign engine from a scenario spec file:
// the batch twin of the simd HTTP service. It expands the spec's matrix
// axes into concrete points, executes them across a worker pool, and
// emits the results document as JSON (default) or CSV.
//
// The default output is deterministic — identical spec, identical bytes,
// regardless of worker count or host — which is what the CI smoke job
// pins against a golden file. Wall-clock timing is opt-in via -wall.
//
// Usage:
//
//	campaign -spec sweep.json [-workers N] [-check-every K] [-format json|csv] [-wall] [-o out]
//	campaign -spec sweep.json [-timeout D] [-stall D] [-retries N]
//	campaign -spec sweep.json -store dir    journal the run to a durable WAL
//	campaign -store dir -resume             finish what a crash interrupted
//	campaign -models
//
// With -store the run is journaled to a crash-safe log (see
// internal/store): the submission, every completed point outcome and the
// final completion each become a record, and outcomes already in the log
// are reused instead of recomputed. -resume replays the log, re-runs
// every campaign a previous crash or interrupt left unfinished —
// journaled points come from the rebuilt cache, only the remainder
// executes — and emits the most recent interrupted campaign's document,
// byte-identical to what an uninterrupted run would have produced.
//
// -timeout bounds each point's wall-clock attempt, -stall arms the
// no-simulated-time-progress watchdog, and -retries bounds the attempts
// of a transiently-failing point before the single-kernel degradation
// rerun kicks in (see the campaign package docs for the full policy).
//
// -profile-guided rewrites every sharded point to the "profiled"
// partitioner and pre-runs each unique point once single-kernel to
// measure its channel traffic and module dispatch counts; the sharded
// run then places modules by the measured weights. The rewrite is a
// pure function of the expansion, so the output stays deterministic
// across worker counts; the placement-cost counters
// (crossings_before/after, cut_weight_before/after) land in each
// point's outcome.
//
// Exit status: 0 on success, 1 if any point failed or any trace-
// equivalence spot check found a difference, 2 on usage or I/O errors —
// or, when a run ends with stalled points, 2 with the first structured
// stall diagnostic printed to stderr so a wedged model is diagnosable
// straight from CI logs.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netlist"
	"repro/internal/par"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/store"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("campaign", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		specPath   = fs.String("spec", "", "scenario spec file (JSON Spec or Set document, - for stdin)")
		workers    = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		checkEvery = fs.Int("check-every", 0, "trace-equivalence spot check every k-th point (0 = off)")
		maxPoints  = fs.Int("max-points", 10000, "largest accepted expansion")
		format     = fs.String("format", "json", "output format: json or csv")
		wall       = fs.Bool("wall", false, "include nondeterministic wall-clock timing")
		outPath    = fs.String("o", "", "output file (default stdout)")
		models     = fs.Bool("models", false, "list registered workload models and exit")
		timeout    = fs.Duration("timeout", 0, "per-point wall-clock deadline (0 = none)")
		stall      = fs.Duration("stall", 0, "stall watchdog window: no simulated-time progress for this long fails the attempt (0 = off)")
		retries    = fs.Int("retries", 0, "attempts per transiently-failing point before degradation (0 = 1, no retry)")
		metricsOut = fs.String("metrics", "", "write a final Prometheus exposition of the run's metrics to this file")
		simtrace   = fs.String("simtrace", "", "write the last sharded point's scheduler timeline as Chrome trace JSON to this file")
		storeDir   = fs.String("store", "", "durable campaign store directory: journal the run to a crash-safe WAL and reuse outcomes already in the log")
		resume     = fs.Bool("resume", false, "resume the campaigns a previous crash or interrupt left unfinished in -store and emit the most recent one's document")
		profGuided = fs.Bool("profile-guided", false, "rewrite sharded points to the profiled partitioner, pre-running each unique point single-kernel to measure its traffic")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *simtrace != "" {
		par.SetTraceCapture(4096)
	}

	if *models {
		for _, name := range scenario.Models() {
			m, _ := scenario.Lookup(name)
			fmt.Fprintf(stdout, "%-14s %v\n", m.Name, m.Keys)
		}
		return 0
	}
	if *resume && *storeDir == "" {
		fmt.Fprintln(stderr, "campaign: -resume requires -store")
		return 2
	}
	if (*specPath == "" && !*resume) || fs.NArg() != 0 {
		fmt.Fprintln(stderr, "usage: campaign -spec <file> [-store dir] [-workers N] [-check-every K] [-format json|csv] [-wall] [-o out]")
		fmt.Fprintln(stderr, "       campaign -store <dir> -resume")
		return 2
	}
	if *format != "json" && *format != "csv" {
		fmt.Fprintf(stderr, "campaign: unknown format %q (want json or csv)\n", *format)
		return 2
	}

	var set scenario.Set
	if *specPath != "" {
		var data []byte
		var err error
		if *specPath == "-" {
			data, err = io.ReadAll(os.Stdin)
		} else {
			data, err = os.ReadFile(*specPath)
		}
		if err != nil {
			fmt.Fprintf(stderr, "campaign: %v\n", err)
			return 2
		}
		set, err = scenario.ParseSet(data)
		if err != nil {
			fmt.Fprintf(stderr, "campaign: %v\n", err)
			return 2
		}
	}

	opts := campaign.Options{
		Workers:       *workers,
		CheckEvery:    *checkEvery,
		MaxPoints:     *maxPoints,
		PointDeadline: *timeout,
		StallWindow:   *stall,
		MaxAttempts:   *retries,
		ProfileGuided: *profGuided,
	}
	var reg *metrics.Registry
	var storeMetrics *store.Metrics
	if *metricsOut != "" {
		reg = metrics.NewRegistry()
		sim.EnableMetrics(reg)
		core.EnableBridgeMetrics(reg)
		par.EnableMetrics(reg)
		netlist.EnableMetrics(reg)
		opts.Metrics = campaign.NewMetrics(reg)
		storeMetrics = store.NewMetrics(reg)
	}

	var res *campaign.Results
	if *storeDir != "" {
		st, rec, err := store.Open(*storeDir, store.Options{Metrics: storeMetrics})
		if err != nil {
			fmt.Fprintf(stderr, "campaign: %v\n", err)
			return 2
		}
		defer st.Close()
		opts.Store = st
		eng := campaign.NewEngine(opts)
		defer eng.Close()
		if *resume {
			res, err = resumeInterrupted(eng, rec, stderr)
		} else {
			// Reuse every outcome already journaled: a re-run of an
			// overlapping spec serves those points from the log.
			for hash, out := range rec.Points {
				eng.Cache().Put(hash, out)
			}
			var job *campaign.Job
			job, err = eng.Submit(set)
			if err == nil {
				res, err = job.Wait(context.Background())
			}
		}
		if err != nil {
			fmt.Fprintf(stderr, "campaign: %v\n", err)
			return 2
		}
		if res == nil {
			fmt.Fprintf(stderr, "campaign: no interrupted campaigns in %s\n", *storeDir)
			return 0
		}
	} else {
		var err error
		res, err = campaign.Run(context.Background(), set, opts)
		if err != nil {
			fmt.Fprintf(stderr, "campaign: %v\n", err)
			return 2
		}
	}
	if reg != nil {
		if err := writeFile(*metricsOut, reg.WritePrometheus); err != nil {
			fmt.Fprintf(stderr, "campaign: metrics: %v\n", err)
			return 2
		}
	}
	if *simtrace != "" {
		tl := par.LastTrace()
		if tl == nil {
			fmt.Fprintln(stderr, "campaign: simtrace: no timeline captured (no multi-shard point ran)")
			return 2
		}
		if err := writeFile(*simtrace, tl.WriteChromeTrace); err != nil {
			fmt.Fprintf(stderr, "campaign: simtrace: %v\n", err)
			return 2
		}
	}

	out := io.Writer(stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(stderr, "campaign: %v\n", err)
			return 2
		}
		defer f.Close()
		out = f
	}
	var err error
	switch *format {
	case "json":
		err = res.JSON(out, *wall)
	case "csv":
		err = res.WriteCSV(out, *wall)
	}
	if err != nil {
		fmt.Fprintf(stderr, "campaign: emitting results: %v\n", err)
		return 2
	}

	if res.Aggregate.Stalled > 0 {
		// A wedged model is an environment/model defect, not an ordinary
		// point failure: exit 2 and print the first structured diagnostic
		// so the stuck shard and frontier are readable from the log.
		for _, p := range res.Points {
			if p.Stall != nil {
				fmt.Fprintf(stderr, "campaign: point %d (%s) stalled: %s\n", p.Index, p.Model, p.Stall)
				break
			}
		}
		fmt.Fprintf(stderr, "campaign: %d stalled points over %d points\n",
			res.Aggregate.Stalled, res.Aggregate.Points)
		return 2
	}
	if res.Aggregate.Errors > 0 || res.Aggregate.CheckFailures > 0 {
		fmt.Fprintf(stderr, "campaign: %d point errors, %d check failures over %d points\n",
			res.Aggregate.Errors, res.Aggregate.CheckFailures, res.Aggregate.Points)
		return 1
	}
	fmt.Fprintf(stderr, "campaign: %d points (%d unique, %d checked) across %v\n",
		res.Aggregate.Points, res.Aggregate.Unique, res.Aggregate.Checked, res.Aggregate.Models)
	return 0
}

// resumeInterrupted replays the journal into the engine, waits for every
// resumed campaign to settle, and returns the document of the most
// recently submitted campaign the crash had cut short — or nil when the
// log holds no interrupted work.
func resumeInterrupted(eng *campaign.Engine, rec *store.Recovered, stderr io.Writer) (*campaign.Results, error) {
	jobs, err := eng.Recover(rec)
	if err != nil {
		return nil, err
	}
	interrupted := map[string]bool{}
	for _, jr := range rec.Jobs {
		if jr.State == store.JobRunning {
			interrupted[jr.ID] = true
		}
	}
	var target *campaign.Job
	for _, j := range jobs {
		// Settle everything before the store closes, so every resumed
		// campaign's completion lands in the journal.
		if _, err := j.Wait(context.Background()); err != nil && interrupted[j.ID()] {
			return nil, fmt.Errorf("resuming %s: %w", j.ID(), err)
		}
		if interrupted[j.ID()] {
			target = j
		}
	}
	if target == nil {
		return nil, nil
	}
	fmt.Fprintf(stderr, "campaign: resumed %s (%d journaled points reused)\n", target.ID(), len(rec.Points))
	res, err := target.Wait(context.Background())
	if err != nil {
		return nil, err
	}
	return res, nil
}

// writeFile creates path and streams write into it.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
