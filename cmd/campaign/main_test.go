package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// wedge-test is a deliberately livelocked model (delta-cycle ping-pong
// frozen at date 0) for exercising the CLI's stall exit path.
func init() {
	scenario.Register(scenario.Model{
		Name: "wedge-test",
		Keys: []string{"shards"},
		Run: func(ctx context.Context, p scenario.Params) (scenario.Outcome, error) {
			r := scenario.NewReader(p)
			w := chaos.Workload{Words: 32, Shards: r.Int("shards", 2), Wedge: true}
			if err := r.Err(); err != nil {
				return scenario.Outcome{}, err
			}
			b, fp := w.Build()
			defer b.Shutdown()
			if err := b.RunGuarded(ctx, sim.RunForever); err != nil {
				return scenario.Outcome{}, err
			}
			return scenario.Outcome{DatesHash: fmt.Sprintf("%016x", fp())}, nil
		},
	})
}

// TestGoldenSmoke pins the CI smoke campaign: the checked-in spec must
// reproduce the checked-in results byte for byte, at any worker count.
// Regenerate the golden with:
//
//	go run ./cmd/campaign -spec cmd/campaign/testdata/smoke.json -check-every 5 -o cmd/campaign/testdata/smoke.golden.json
func TestGoldenSmoke(t *testing.T) {
	golden, err := os.ReadFile("testdata/smoke.golden.json")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		var out, errBuf bytes.Buffer
		code := run([]string{
			"-spec", "testdata/smoke.json",
			"-check-every", "5",
			"-workers", strconv.Itoa(workers),
		}, &out, &errBuf)
		if code != 0 {
			t.Fatalf("workers=%d: exit %d, stderr: %s", workers, code, errBuf.String())
		}
		if out.String() != string(golden) {
			t.Errorf("workers=%d: output drifted from testdata/smoke.golden.json\nstderr: %s\n(regenerate if the change is intended)",
				workers, errBuf.String())
		}
	}
}

func TestCSVOutput(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-spec", "testdata/smoke.json", "-format", "csv"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 21 { // header + 20 points
		t.Fatalf("%d CSV lines, want 21", len(lines))
	}
	if !strings.HasPrefix(lines[0], "index,model,hash") {
		t.Errorf("header: %q", lines[0])
	}
}

func TestModelsFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-models"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, m := range []string{"pipeline", "soc", "soc-clustered", "kpn", "noc"} {
		if !strings.Contains(out.String(), m) {
			t.Errorf("models listing misses %q:\n%s", m, out.String())
		}
	}
}

func TestExitCodes(t *testing.T) {
	tmp := t.TempDir() + "/bad.json"
	os.WriteFile(tmp, []byte(`{"model":"pipeline","matrix":{"mode":["TDfull","warp"]}}`), 0o644)
	var out, errBuf bytes.Buffer
	if code := run([]string{"-spec", tmp}, &out, &errBuf); code != 1 {
		t.Errorf("campaign with a failing point: exit %d, want 1 (stderr: %s)", code, errBuf.String())
	}
	if code := run([]string{"-spec", "testdata/nope.json"}, &out, &errBuf); code != 2 {
		t.Errorf("missing spec file: exit %d, want 2", code)
	}
	if code := run([]string{}, &out, &errBuf); code != 2 {
		t.Errorf("no -spec: exit %d, want 2", code)
	}
	if code := run([]string{"-spec", tmp, "-format", "xml"}, &out, &errBuf); code != 2 {
		t.Errorf("bad format: exit %d, want 2", code)
	}
	bad := t.TempDir() + "/unknown.json"
	os.WriteFile(bad, []byte(`{"model":"warpdrive"}`), 0o644)
	if code := run([]string{"-spec", bad}, &out, &errBuf); code != 2 {
		t.Errorf("unknown model: exit %d, want 2", code)
	}
}

// TestStallExitCode pins the CLI end of the robustness contract: a
// wedged model under -stall terminates within the window, exits 2, and
// prints the structured stall diagnostic (stuck shard + frontier) to
// stderr.
func TestStallExitCode(t *testing.T) {
	spec := t.TempDir() + "/wedge.json"
	os.WriteFile(spec, []byte(`{"model":"wedge-test","params":{"shards":2}}`), 0o644)
	var out, errBuf bytes.Buffer
	code := run([]string{"-spec", spec, "-stall", "80ms", "-timeout", "5s"}, &out, &errBuf)
	if code != 2 {
		t.Fatalf("stalled campaign: exit %d, want 2 (stderr: %s)", code, errBuf.String())
	}
	msg := errBuf.String()
	for _, want := range []string{"stalled", "shard", "1 stalled points"} {
		if !strings.Contains(msg, want) {
			t.Errorf("stderr misses %q:\n%s", want, msg)
		}
	}
	if !strings.Contains(out.String(), `"stall"`) {
		t.Errorf("results document misses the stall diagnostic:\n%s", out.String())
	}
}

// TestGoldenMesh pins the topology-axis smoke: a mesh swept across
// shard counts × partitioners must reproduce the checked-in golden at any
// worker count — and, structurally, every (shards, partitioner) cell of
// the sweep must carry the same dated-log digest and checksums (the
// bridge auto-insertion exactness claim). Regenerate with:
//
//	go run ./cmd/campaign -spec cmd/campaign/testdata/mesh.json -check-every 3 -o cmd/campaign/testdata/mesh.golden.json
func TestGoldenMesh(t *testing.T) {
	golden, err := os.ReadFile("testdata/mesh.golden.json")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		var out, errBuf bytes.Buffer
		code := run([]string{
			"-spec", "testdata/mesh.json",
			"-check-every", "3",
			"-workers", strconv.Itoa(workers),
		}, &out, &errBuf)
		if code != 0 {
			t.Fatalf("workers=%d: exit %d, stderr: %s", workers, code, errBuf.String())
		}
		if out.String() != string(golden) {
			t.Errorf("workers=%d: output drifted from testdata/mesh.golden.json\nstderr: %s\n(regenerate if the change is intended)",
				workers, errBuf.String())
		}
	}
	var doc struct {
		Points []struct {
			Params  map[string]any `json:"params"`
			Outcome struct {
				DatesHash string   `json:"dates_hash"`
				Checksums []uint64 `json:"checksums"`
			} `json:"outcome"`
		} `json:"points"`
	}
	if err := json.Unmarshal(golden, &doc); err != nil {
		t.Fatal(err)
	}
	digests := map[string]bool{}
	n := 0
	for _, p := range doc.Points {
		if p.Params["kind"] == "mesh" && p.Params["height"] != nil {
			digests[p.Outcome.DatesHash] = true
			n++
		}
	}
	if n != 9 || len(digests) != 1 {
		t.Fatalf("mesh sweep: %d points, %d distinct digests (want 9 points, 1 digest)", n, len(digests))
	}
}
