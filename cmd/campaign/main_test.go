package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strconv"
	"strings"
	"testing"
)

// TestGoldenSmoke pins the CI smoke campaign: the checked-in spec must
// reproduce the checked-in results byte for byte, at any worker count.
// Regenerate the golden with:
//
//	go run ./cmd/campaign -spec cmd/campaign/testdata/smoke.json -check-every 5 -o cmd/campaign/testdata/smoke.golden.json
func TestGoldenSmoke(t *testing.T) {
	golden, err := os.ReadFile("testdata/smoke.golden.json")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		var out, errBuf bytes.Buffer
		code := run([]string{
			"-spec", "testdata/smoke.json",
			"-check-every", "5",
			"-workers", strconv.Itoa(workers),
		}, &out, &errBuf)
		if code != 0 {
			t.Fatalf("workers=%d: exit %d, stderr: %s", workers, code, errBuf.String())
		}
		if out.String() != string(golden) {
			t.Errorf("workers=%d: output drifted from testdata/smoke.golden.json\nstderr: %s\n(regenerate if the change is intended)",
				workers, errBuf.String())
		}
	}
}

func TestCSVOutput(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-spec", "testdata/smoke.json", "-format", "csv"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 21 { // header + 20 points
		t.Fatalf("%d CSV lines, want 21", len(lines))
	}
	if !strings.HasPrefix(lines[0], "index,model,hash") {
		t.Errorf("header: %q", lines[0])
	}
}

func TestModelsFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-models"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, m := range []string{"pipeline", "soc", "soc-clustered", "kpn", "noc"} {
		if !strings.Contains(out.String(), m) {
			t.Errorf("models listing misses %q:\n%s", m, out.String())
		}
	}
}

func TestExitCodes(t *testing.T) {
	tmp := t.TempDir() + "/bad.json"
	os.WriteFile(tmp, []byte(`{"model":"pipeline","matrix":{"mode":["TDfull","warp"]}}`), 0o644)
	var out, errBuf bytes.Buffer
	if code := run([]string{"-spec", tmp}, &out, &errBuf); code != 1 {
		t.Errorf("campaign with a failing point: exit %d, want 1 (stderr: %s)", code, errBuf.String())
	}
	if code := run([]string{"-spec", "testdata/nope.json"}, &out, &errBuf); code != 2 {
		t.Errorf("missing spec file: exit %d, want 2", code)
	}
	if code := run([]string{}, &out, &errBuf); code != 2 {
		t.Errorf("no -spec: exit %d, want 2", code)
	}
	if code := run([]string{"-spec", tmp, "-format", "xml"}, &out, &errBuf); code != 2 {
		t.Errorf("bad format: exit %d, want 2", code)
	}
	bad := t.TempDir() + "/unknown.json"
	os.WriteFile(bad, []byte(`{"model":"warpdrive"}`), 0o644)
	if code := run([]string{"-spec", bad}, &out, &errBuf); code != 2 {
		t.Errorf("unknown model: exit %d, want 2", code)
	}
}

// TestGoldenMesh pins the topology-axis smoke: a mesh swept across
// shard counts × partitioners must reproduce the checked-in golden at any
// worker count — and, structurally, every (shards, partitioner) cell of
// the sweep must carry the same dated-log digest and checksums (the
// bridge auto-insertion exactness claim). Regenerate with:
//
//	go run ./cmd/campaign -spec cmd/campaign/testdata/mesh.json -check-every 3 -o cmd/campaign/testdata/mesh.golden.json
func TestGoldenMesh(t *testing.T) {
	golden, err := os.ReadFile("testdata/mesh.golden.json")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		var out, errBuf bytes.Buffer
		code := run([]string{
			"-spec", "testdata/mesh.json",
			"-check-every", "3",
			"-workers", strconv.Itoa(workers),
		}, &out, &errBuf)
		if code != 0 {
			t.Fatalf("workers=%d: exit %d, stderr: %s", workers, code, errBuf.String())
		}
		if out.String() != string(golden) {
			t.Errorf("workers=%d: output drifted from testdata/mesh.golden.json\nstderr: %s\n(regenerate if the change is intended)",
				workers, errBuf.String())
		}
	}
	var doc struct {
		Points []struct {
			Params  map[string]any `json:"params"`
			Outcome struct {
				DatesHash string   `json:"dates_hash"`
				Checksums []uint64 `json:"checksums"`
			} `json:"outcome"`
		} `json:"points"`
	}
	if err := json.Unmarshal(golden, &doc); err != nil {
		t.Fatal(err)
	}
	digests := map[string]bool{}
	n := 0
	for _, p := range doc.Points {
		if p.Params["kind"] == "mesh" && p.Params["height"] != nil {
			digests[p.Outcome.DatesHash] = true
			n++
		}
	}
	if n != 9 || len(digests) != 1 {
		t.Fatalf("mesh sweep: %d points, %d distinct digests (want 9 points, 1 digest)", n, len(digests))
	}
}
