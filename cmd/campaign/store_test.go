package main

import (
	"bytes"
	"os"
	"testing"

	"repro/internal/store"
)

// TestStoreFlagJournalsRun: -store journals the batch run and a second
// invocation against the same directory reuses every outcome from the
// log while reproducing the golden bytes.
func TestStoreFlagJournalsRun(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-spec", "testdata/smoke.json", "-check-every", "5", "-store", dir}

	var out1, err1 bytes.Buffer
	if code := run(args, &out1, &err1); code != 0 {
		t.Fatalf("first run: exit %d, stderr: %s", code, err1.String())
	}
	_, rec, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Jobs) != 1 || rec.Jobs[0].State != store.JobFinished {
		t.Fatalf("journal after run: %+v", rec.Jobs)
	}
	if len(rec.Points) == 0 {
		t.Fatal("no point outcomes journaled")
	}

	var out2, err2 bytes.Buffer
	if code := run(args, &out2, &err2); code != 0 {
		t.Fatalf("second run: exit %d, stderr: %s", code, err2.String())
	}
	if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
		t.Error("journal-warmed rerun produced different bytes")
	}
}

// TestResumeFlag finishes an interrupted journal: a hand-written log
// holding a submission without a terminal record resumes, completes and
// emits the same document a clean run produces.
func TestResumeFlag(t *testing.T) {
	// The clean document, produced without any store.
	var clean, cleanErr bytes.Buffer
	if code := run([]string{"-spec", "testdata/smoke.json", "-check-every", "5"}, &clean, &cleanErr); code != 0 {
		t.Fatalf("clean run: exit %d, stderr: %s", code, cleanErr.String())
	}

	// An interrupted journal: submission only, as if the process died
	// before any completion landed.
	dir := t.TempDir()
	st, _, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	specDoc, err := os.ReadFile("testdata/smoke.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.JobSubmitted("c1", "ci-smoke", 20, 20, specDoc); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	var out, errBuf bytes.Buffer
	if code := run([]string{"-store", dir, "-resume", "-check-every", "5"}, &out, &errBuf); code != 0 {
		t.Fatalf("resume: exit %d, stderr: %s", code, errBuf.String())
	}
	if !bytes.Equal(out.Bytes(), clean.Bytes()) {
		t.Errorf("resumed document differs from clean run\nstderr: %s", errBuf.String())
	}

	// The journal now records the completion; a second -resume finds
	// nothing interrupted.
	var out2, err2 bytes.Buffer
	if code := run([]string{"-store", dir, "-resume"}, &out2, &err2); code != 0 {
		t.Fatalf("second resume: exit %d, stderr: %s", code, err2.String())
	}
	if out2.Len() != 0 || !bytes.Contains(err2.Bytes(), []byte("no interrupted campaigns")) {
		t.Errorf("second resume: stdout %q, stderr %q", out2.String(), err2.String())
	}
}

// TestResumeRequiresStore pins the flag validation.
func TestResumeRequiresStore(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-resume"}, &out, &errBuf); code != 2 {
		t.Errorf("-resume without -store: exit %d, want 2", code)
	}
}
