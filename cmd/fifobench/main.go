// Command fifobench regenerates the paper's Fig. 5: execution durations of
// the three-module benchmark (source → transmitter → sink over two FIFOs)
// as a function of the FIFO depth, for the untimed, TDless (timed, no
// decoupling) and TDfull (timed, Smart FIFO decoupling) implementations.
//
// With -quantum it additionally runs the quantum-keeper ablation,
// reporting wall time and the maximum timing error versus the TDless
// reference for a sweep of quantum values.
//
// With -burst=N it additionally runs the burst-dominated configuration:
// the same model moving words in chunks of N through the bulk transfer
// fast paths (rows TDless-b, the chunked scalar reference, and TDburst,
// the chunked bulk TDfull; plus TDpar-b when -shards is also set). The
// TDburst error column is measured against the chunked TDless reference
// and must be zero: fifobench exits 1 on any accuracy violation, which is
// the CI bulk-vs-scalar golden comparison.
//
// -cpuprofile/-memprofile write pprof profiles of the whole sweep.
//
// Output is a whitespace-separated table (or CSV with -csv, or a single
// JSON document with -json for machine-recorded perf trajectories) with one
// row per (depth, mode): wall-clock milliseconds, kernel context switches
// and the simulated end date. The paper's claims to check:
//
//   - TDless is flat across depths (one context switch per access);
//   - untimed and TDfull speed up as the depth grows;
//   - TDfull ≈ 2× untimed; slower than TDless at depth 1, ≈ equal at 2,
//     ≈ 2× faster at 4, gain factor ≈ 6+ for large FIFOs;
//   - TDfull's timing error is always zero, at any depth;
//   - TDburst beats TDfull by ≥ 2× on burst-dominated configurations,
//     still at zero timing error.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/campaign"
	"repro/internal/netlist"
	"repro/internal/par"
	"repro/internal/pipeline"
	"repro/internal/sim"
)

// row is one (depth, mode) measurement, shared by the CSV and JSON outputs.
type row struct {
	Depth     int    `json:"depth"`
	Mode      string `json:"mode"`
	Shards    int    `json:"shards,omitempty"`
	Crossings int    `json:"crossings,omitempty"`
	// The placement-cost columns are populated only by profiled-placement
	// rows (-partitioner profiled): hint-based vs measured-traffic cut.
	CrossingsBefore int     `json:"crossings_before,omitempty"`
	CrossingsAfter  int     `json:"crossings_after,omitempty"`
	CutWeightBefore float64 `json:"cut_weight_before,omitempty"`
	CutWeightAfter  float64 `json:"cut_weight_after,omitempty"`
	QuantumNS       int64   `json:"quantum_ns,omitempty"`
	WallMS          float64 `json:"wall_ms"`
	CtxSwitches     uint64  `json:"ctx_switches"`
	SimEndNS        int64   `json:"sim_end_ns"`
	MaxErrNS        int64   `json:"max_err_ns"`
}

// report is the -json document.
type report struct {
	Benchmark string `json:"benchmark"`
	Blocks    int    `json:"blocks"`
	Words     int    `json:"words"`
	Reps      int    `json:"reps"`
	Burst     int    `json:"burst,omitempty"`
	Rows      []row  `json:"rows"`
}

func main() {
	var (
		blocks      = flag.Int("blocks", 200, "blocks to transfer (paper: 1000)")
		words       = flag.Int("words", 1000, "words per block (paper: 1000)")
		depths      = flag.String("depths", "1,2,4,8,16,32,64,128,256,512,1024", "comma-separated FIFO depths")
		reps        = flag.Int("reps", 1, "repetitions per point (best wall time kept)")
		quantum     = flag.Bool("quantum", false, "run the quantum-keeper ablation instead of Fig. 5")
		shards      = flag.Int("shards", 0, "additionally run TDfull partitioned over N kernels (TDpar rows)")
		partitioner = flag.String("partitioner", "", "netlist partitioner for the sharded rows: single, roundrobin (default), mincut or profiled (two-phase, measured-traffic placement)")
		burst       = flag.Int("burst", 0, "additionally run the burst-dominated configuration with chunks of N words (TDless-b/TDburst rows)")
		csv         = flag.Bool("csv", false, "emit CSV")
		jsonOut     = flag.Bool("json", false, "emit a single JSON document (for BENCH_*.json trajectories)")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile after the sweep to this file")
		simtrace    = flag.String("simtrace", "", "write the last sharded run's scheduler timeline as Chrome trace JSON to this file (needs -shards > 1)")
	)
	flag.Parse()
	if *simtrace != "" {
		par.SetTraceCapture(4096)
	}
	code := run(*blocks, *words, *depths, *reps, *quantum, *shards, *burst, *partitioner,
		*csv, *jsonOut, *cpuprofile, *memprofile)
	if code == 0 && *simtrace != "" {
		if err := dumpTrace(*simtrace); err != nil {
			fmt.Fprintf(os.Stderr, "fifobench: simtrace: %v\n", err)
			code = 1
		} else {
			fmt.Fprintf(os.Stderr, "fifobench: scheduler timeline written to %s (open in chrome://tracing or ui.perfetto.dev)\n", *simtrace)
		}
	}
	os.Exit(code)
}

// dumpTrace writes the most recent captured scheduler timeline to path.
func dumpTrace(path string) error {
	tl := par.LastTrace()
	if tl == nil {
		return fmt.Errorf("no timeline captured (multi-shard run required)")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tl.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// run does the whole sweep and returns the exit code, so profile teardown
// (deferred here) happens before main exits.
func run(blocks, words int, depths string, reps int, quantum bool, shards, burst int, partitioner string,
	csv, jsonOut bool, cpuprofile, memprofile string) int {
	if shards > 3 {
		fmt.Fprintf(os.Stderr, "fifobench: -shards %d: the Fig. 5 model has only 3 modules (use -shards 1..3)\n", shards)
		return 2
	}
	if _, err := netlist.PartitionerByName(partitioner); err != nil {
		fmt.Fprintf(os.Stderr, "fifobench: %v\n", err)
		return 2
	}
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fifobench: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "fifobench: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if memprofile != "" {
		defer func() {
			f, err := os.Create(memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fifobench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "fifobench: %v\n", err)
			}
		}()
	}

	var depthList []int
	for _, s := range strings.Split(depths, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || d <= 0 {
			fmt.Fprintf(os.Stderr, "fifobench: bad depth %q\n", s)
			return 2
		}
		depthList = append(depthList, d)
	}

	// CSV and JSON go through the shared campaign emitters.
	var csvW *campaign.CSV
	if csv && !jsonOut {
		if quantum {
			csvW = campaign.NewCSV(os.Stdout, "depth", "mode", "quantum_ns", "wall_ms", "ctx_switches", "max_err_ns")
		} else {
			csvW = campaign.NewCSV(os.Stdout, "depth", "mode", "wall_ms", "ctx_switches", "sim_end_ns", "err_ns", "crossings",
				"crossings_before", "crossings_after", "cut_weight_before", "cut_weight_after")
		}
	}
	var rows []row
	violations := 0
	name := "fig5"
	if quantum {
		name = "quantum"
		if shards > 1 {
			fmt.Fprintln(os.Stderr, "fifobench: -shards is ignored with -quantum (the ablation has no sharded rows)")
		}
		rows = runQuantumAblation(blocks, words, depthList, reps, csvW, jsonOut)
	} else {
		rows, violations = runFig5(blocks, words, depthList, reps, shards, burst, partitioner, csvW, jsonOut)
	}
	if csvW != nil {
		if err := csvW.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "fifobench: %v\n", err)
			return 1
		}
	}
	if jsonOut {
		if err := campaign.WriteJSON(os.Stdout, report{
			Benchmark: name, Blocks: blocks, Words: words, Reps: reps, Burst: burst, Rows: rows,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "fifobench: %v\n", err)
			return 1
		}
	}
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "fifobench: ACCURACY VIOLATION: %d row(s) with nonzero timing error\n", violations)
		return 1
	}
	return 0
}

// best runs cfg reps times and keeps the fastest wall time (other fields
// are identical across repetitions by determinism).
func best(cfg pipeline.Config, reps int) pipeline.Result {
	res := pipeline.Run(cfg)
	for i := 1; i < reps; i++ {
		r := pipeline.Run(cfg)
		if r.Wall < res.Wall {
			res = r
		}
	}
	return res
}

// runFig5 returns the measured rows plus the number of accuracy violations
// (nonzero TDfull/TDburst/TDpar error columns); any violation makes
// fifobench exit 1.
func runFig5(blocks, words int, depths []int, reps, shards, burst int, partitioner string, csvW *campaign.CSV, quiet bool) ([]row, int) {
	if !quiet && csvW == nil {
		fmt.Printf("Fig. 5 — %d blocks x %d words\n", blocks, words)
		fmt.Printf("%6s  %-8s  %10s  %12s  %14s  %8s\n",
			"depth", "mode", "wall(ms)", "ctx switches", "sim end", "err")
	}
	var rows []row
	violations := 0
	for _, d := range depths {
		// ref is the word-at-a-time TDless reference; bref the chunked
		// one (the scalar oracle the bulk TDburst rows are pinned to).
		var ref, bref pipeline.Result
		emit := func(label string, cfg pipeline.Config, isRef bool) {
			r := best(cfg, reps)
			errStr := "-"
			var errNS sim.Time
			if isRef {
				if cfg.Burst > 1 {
					bref = r
				} else {
					ref = r
				}
			} else if cfg.Mode == pipeline.TDfull {
				against := ref
				if cfg.Burst > 1 {
					against = bref
				}
				errNS = pipeline.MaxTimingError(against, r)
				errStr = errNS.String()
				if errNS != 0 {
					violations++
				}
			}
			rowShards := 0
			if cfg.Shards > 1 {
				rowShards = r.Shards
			}
			nr := row{
				Depth: d, Mode: label, Shards: rowShards, Crossings: r.Crossings,
				WallMS:      float64(r.Wall.Microseconds()) / 1000,
				CtxSwitches: r.Stats.ContextSwitches,
				SimEndNS:    int64(r.SimEnd / sim.NS),
				MaxErrNS:    int64(errNS / sim.NS),
			}
			if pc := r.Placement; pc != nil {
				nr.CrossingsBefore, nr.CrossingsAfter = pc.CrossingsBefore, pc.CrossingsAfter
				nr.CutWeightBefore, nr.CutWeightAfter = pc.CutWeightBefore, pc.CutWeightAfter
			}
			rows = append(rows, nr)
			if quiet {
				return
			}
			if csvW != nil {
				csvW.Row(d, label, float64(r.Wall.Microseconds())/1000, r.Stats.ContextSwitches,
					int64(r.SimEnd/sim.NS), int64(errNS/sim.NS), r.Crossings,
					nr.CrossingsBefore, nr.CrossingsAfter, nr.CutWeightBefore, nr.CutWeightAfter)
			} else {
				fmt.Printf("%6d  %-8s  %10.3f  %12d  %14v  %8s\n",
					d, label, float64(r.Wall.Microseconds())/1000, r.Stats.ContextSwitches, r.SimEnd, errStr)
			}
		}
		for _, m := range []pipeline.Mode{pipeline.Untimed, pipeline.TDless, pipeline.TDfull} {
			emit(m.String(), pipeline.Config{Mode: m, Depth: d, Blocks: blocks, WordsPerBlock: words}, m == pipeline.TDless)
		}
		if shards > 1 {
			// TDpar: the same TDfull model partitioned over the
			// conservative multi-kernel coordinator. Same dates (the
			// err column must stay 0), different wall clock.
			emit("TDpar", pipeline.Config{
				Mode: pipeline.TDfull, Depth: d, Blocks: blocks, WordsPerBlock: words, Shards: shards,
				Partitioner: partitioner,
			}, false)
		}
		if burst > 1 {
			// Burst-dominated configuration: chunked scalar TDless
			// reference, then the bulk TDburst rows pinned against it
			// (err must stay 0).
			emit("TDless-b", pipeline.Config{
				Mode: pipeline.TDless, Depth: d, Blocks: blocks, WordsPerBlock: words, Burst: burst,
			}, true)
			emit("TDburst", pipeline.Config{
				Mode: pipeline.TDfull, Depth: d, Blocks: blocks, WordsPerBlock: words, Burst: burst,
			}, false)
			if shards > 1 {
				emit("TDpar-b", pipeline.Config{
					Mode: pipeline.TDfull, Depth: d, Blocks: blocks, WordsPerBlock: words, Burst: burst, Shards: shards,
					Partitioner: partitioner,
				}, false)
			}
		}
	}
	return rows, violations
}

func runQuantumAblation(blocks, words int, depths []int, reps int, csvW *campaign.CSV, quiet bool) []row {
	quanta := []sim.Time{0, 100 * sim.NS, 1 * sim.US, 10 * sim.US, 100 * sim.US}
	if !quiet && csvW == nil {
		fmt.Printf("Quantum ablation — %d blocks x %d words\n", blocks, words)
		fmt.Printf("%6s  %-10s  %10s  %10s  %12s  %12s\n",
			"depth", "mode", "quantum", "wall(ms)", "ctx switches", "max err")
	}
	var rows []row
	for _, d := range depths {
		ref := best(pipeline.Config{Mode: pipeline.TDless, Depth: d, Blocks: blocks, WordsPerBlock: words}, reps)
		emit := func(mode string, quantum sim.Time, r pipeline.Result) {
			e := pipeline.MaxTimingError(ref, r)
			rows = append(rows, row{
				Depth: d, Mode: mode, QuantumNS: int64(quantum / sim.NS),
				WallMS:      float64(r.Wall.Microseconds()) / 1000,
				CtxSwitches: r.Stats.ContextSwitches,
				SimEndNS:    int64(r.SimEnd / sim.NS),
				MaxErrNS:    int64(e / sim.NS),
			})
			if quiet {
				return
			}
			if csvW != nil {
				csvW.Row(d, mode, int64(quantum/sim.NS),
					float64(r.Wall.Microseconds())/1000, r.Stats.ContextSwitches, int64(e/sim.NS))
			} else {
				fmt.Printf("%6d  %-10s  %10v  %10.3f  %12d  %12v\n",
					d, mode, quantum, float64(r.Wall.Microseconds())/1000, r.Stats.ContextSwitches, e)
			}
		}
		for _, q := range quanta {
			r := best(pipeline.Config{
				Mode: pipeline.Quantum, Depth: d, Blocks: blocks, WordsPerBlock: words, QuantumValue: q,
			}, reps)
			emit("quantum", q, r)
		}
		smart := best(pipeline.Config{Mode: pipeline.TDfull, Depth: d, Blocks: blocks, WordsPerBlock: words}, reps)
		emit("TDfull", 0, smart)
	}
	return rows
}
