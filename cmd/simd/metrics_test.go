package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/metrics"
)

// newMetricsServer builds a server whose engine publishes into a fresh
// registry, so tests can scrape /metrics against live campaigns.
func newMetricsServer(t *testing.T, workers int) (*httptest.Server, *campaign.Engine, *metrics.Registry) {
	t.Helper()
	reg := metrics.NewRegistry()
	eng := campaign.NewEngine(campaign.Options{Workers: workers, Metrics: campaign.NewMetrics(reg)})
	ts := httptest.NewServer(newServer(eng, reg))
	t.Cleanup(func() {
		ts.Close()
		eng.Close()
	})
	return ts, eng, reg
}

// scrape fetches /metrics, checks the content type and that the body is
// a well-formed exposition, and returns the family names and raw body.
func scrape(t *testing.T, ts *httptest.Server) ([]string, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metrics.ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, metrics.ContentType)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	fams, err := metrics.ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, buf.Bytes())
	}
	return fams, buf.Bytes()
}

// counterValue sums a family's series values from the registry.
func counterValue(reg *metrics.Registry, name string) float64 {
	var v float64
	for _, f := range reg.Snapshot() {
		if f.Name == name {
			for _, s := range f.Series {
				v += s.Value
			}
		}
	}
	return v
}

// TestMetricsScrapeMidCampaign scrapes /metrics while a campaign is
// held in flight by the slow-model gate, then again after a second
// identical submission, asserting the points and cache-hit counters
// moved and the exposition stays valid throughout.
func TestMetricsScrapeMidCampaign(t *testing.T) {
	ts, _, reg := newMetricsServer(t, 2)
	release := armSlowGate()
	defer release()

	spec := `{"name":"m","model":"slow-test","matrix":{"id":[1,2,3]}}`
	code, body := post(t, ts.URL+"/campaigns", spec)
	if code != http.StatusCreated {
		t.Fatalf("submit: %d %s", code, body)
	}
	var sub struct {
		ID string `json:"id"`
	}
	json.Unmarshal(body, &sub)

	// Mid-flight: the campaign gauge is up, points have started, the
	// exposition is valid while workers are actively writing.
	waitFor(t, func() bool { return counterValue(reg, "campaign_points_started_total") > 0 })
	fams, _ := scrape(t, ts)
	if !contains(fams, "campaign_points_started_total") || !contains(fams, "campaign_active_campaigns") {
		t.Fatalf("campaign families missing from scrape: %v", fams)
	}
	if v := counterValue(reg, "campaign_active_campaigns"); v != 1 {
		t.Errorf("campaign_active_campaigns mid-flight = %v, want 1", v)
	}

	// The live stats endpoint moves with the campaign.
	code, body = get(t, ts.URL+"/campaigns/"+sub.ID+"/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d %s", code, body)
	}
	var live campaign.Live
	if err := json.Unmarshal(body, &live); err != nil {
		t.Fatalf("stats document: %v\n%s", err, body)
	}
	if live.State != campaign.JobRunning || live.Started == 0 {
		t.Errorf("mid-flight live = %+v, want running with started > 0", live)
	}

	release()
	waitDone(t, ts, sub.ID)

	// Same spec again: every point is served from the shared cache.
	code, body = post(t, ts.URL+"/campaigns", spec)
	if code != http.StatusCreated {
		t.Fatalf("resubmit: %d %s", code, body)
	}
	json.Unmarshal(body, &sub)
	waitDone(t, ts, sub.ID)

	fams, raw := scrape(t, ts)
	for _, want := range []string{"campaign_points_completed_total", "campaign_cache_hits_total"} {
		if !contains(fams, want) {
			t.Fatalf("%s missing from scrape:\n%s", want, raw)
		}
	}
	if v := counterValue(reg, "campaign_points_completed_total"); v < 6 {
		t.Errorf("campaign_points_completed_total = %v, want >= 6", v)
	}
	if v := counterValue(reg, "campaign_cache_hits_total"); v < 3 {
		t.Errorf("campaign_cache_hits_total = %v, want >= 3 (full resubmission)", v)
	}
	if v := counterValue(reg, "campaign_active_campaigns"); v != 0 {
		t.Errorf("campaign_active_campaigns settled at %v, want 0", v)
	}

	// Settled live stats account for every point.
	code, body = get(t, ts.URL+"/campaigns/"+sub.ID+"/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &live); err != nil {
		t.Fatal(err)
	}
	if live.Completed != 3 || live.Failed != 0 {
		t.Errorf("settled live = %+v, want 3 completed", live)
	}
}

// TestDebugTraceEmpty: without an armed capture the trace endpoint
// answers 404 with a JSON error, not an empty document.
func TestDebugTraceEmpty(t *testing.T) {
	ts, _, _ := newMetricsServer(t, 1)
	code, body := get(t, ts.URL+"/debug/trace")
	if code != http.StatusNotFound {
		t.Fatalf("GET /debug/trace with no capture: %d %s", code, body)
	}
}

// TestHealthzBuildInfo: the liveness document carries uptime and build
// info alongside the original ok flag.
func TestHealthzBuildInfo(t *testing.T) {
	ts, _, _ := newMetricsServer(t, 1)
	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d %s", code, body)
	}
	var doc map[string]any
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if ok, _ := doc["ok"].(bool); !ok {
		t.Errorf("healthz ok = %v", doc["ok"])
	}
	if _, present := doc["uptime_s"]; !present {
		t.Errorf("healthz missing uptime_s: %s", body)
	}
	if _, present := doc["go"]; !present {
		t.Errorf("healthz missing go build info: %s", body)
	}
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

// waitFor polls cond for up to 5 s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}

// waitDone polls the status endpoint until the job settles.
func waitDone(t *testing.T, ts *httptest.Server, id string) {
	t.Helper()
	waitFor(t, func() bool {
		_, body := get(t, ts.URL+"/campaigns/"+id)
		var st campaign.Status
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("status: %v: %s", err, body)
		}
		if st.State == campaign.JobFailed || st.State == campaign.JobCancelled {
			t.Fatalf("job %s settled as %s: %s", id, st.State, body)
		}
		return st.State == campaign.JobDone
	})
}

