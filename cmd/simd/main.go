// Command simd is the simulation service: an HTTP front-end over the
// campaign engine. It accepts declarative scenario specs, fans the
// expanded design-space points out over a worker pool (one or more
// sim.Kernel instances per point), and serves progress and results:
//
//	POST   /campaigns          submit a Spec or Set JSON document
//	GET    /campaigns          list campaigns (resumed ones are marked)
//	GET    /campaigns/{id}     status and progress
//	DELETE /campaigns/{id}     cancel (partial results are kept; 409 if
//	                           the campaign already settled)
//	GET  /campaigns/{id}/results[?format=csv][&wall=1][&stream=1]
//	GET  /campaigns/{id}/stats  live counters while a campaign runs
//	GET  /models             registered workload models and their keys
//	GET  /healthz            liveness, uptime, build info
//	GET  /metrics            Prometheus text exposition (0.0.4)
//	GET  /debug/trace        scheduler timeline as Chrome trace JSON
//	                         (arm capture with -simtrace N)
//
// The server uses only net/http; it shuts down gracefully on SIGINT or
// SIGTERM: in-flight requests drain, and running campaigns are cancelled
// cooperatively — every in-flight point is interrupted at a kernel safe
// point and the partial results documents are kept. Submissions are
// bounded (body size, expansion size, concurrent campaigns — the latter
// answering 429 with a Retry-After), each point runs under a wall-clock
// deadline and a no-progress stall watchdog, and DELETE /campaigns/{id}
// cancels one campaign the same way. Results stay deterministic: the
// default document carries no wall-clock fields, so identical specs
// return identical bytes.
//
// With -store DIR every campaign is journaled to the crash-safe log in
// internal/store, and a restart resumes whatever a crash cut short:
// journaled point outcomes feed the cross-restart cache (so nothing is
// recomputed) and the finished document is byte-identical to an
// uninterrupted run's. Explicitly-cancelled campaigns are not resumed —
// they reappear as settled tombstones whose results answer 410. While a
// campaign runs, ?stream=1 on the results endpoint serves completed
// points incrementally (chunked CSV, or NDJSON closing with the
// aggregate) instead of the buffered endpoint's 409.
//
// Example:
//
//	simd -addr :8080 &
//	curl -d '{"model":"pipeline","matrix":{"depth":[1,4,16]}}' localhost:8080/campaigns
//	curl localhost:8080/campaigns/c1
//	curl localhost:8080/campaigns/c1/results?format=csv
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // handlers registered on DefaultServeMux, mounted behind -pprof
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netlist"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/store"
)

func main() { os.Exit(run(os.Args[1:])) }

// run is main minus the process exit, so the crash-recovery harness can
// re-exec the service from the test binary.
func run(args []string) int {
	fs := flag.NewFlagSet("simd", flag.ExitOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		workers    = fs.Int("workers", 0, "campaign worker pool size (0 = GOMAXPROCS)")
		checkEvery = fs.Int("check-every", 16, "trace-equivalence spot check every k-th point (0 = off)")
		maxPoints  = fs.Int("max-points", 10000, "largest accepted expansion")
		drain      = fs.Duration("drain", 10*time.Second, "graceful shutdown timeout")
		deadline   = fs.Duration("deadline", 2*time.Minute, "per-point wall-clock deadline (0 = none)")
		stall      = fs.Duration("stall", 10*time.Second, "per-point no-progress stall window (0 = off)")
		retries    = fs.Int("retries", 2, "attempts per transiently-failing point before degradation")
		maxActive  = fs.Int("max-active", 4, "concurrently running campaigns before 429 (0 = unbounded)")
		pprofOn    = fs.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ (profiling the live service)")
		simtrace   = fs.Int("simtrace", 0, "retain N scheduler timeline events per shard worker, served at /debug/trace (0 = off)")
		storeDir   = fs.String("store", "", "durable campaign store directory: journal every campaign to a crash-safe WAL and resume interrupted ones on boot (empty = in-memory only)")
	)
	fs.Parse(args)

	// One registry backs GET /metrics; every subsystem publishes into it.
	reg := metrics.NewRegistry()
	sim.EnableMetrics(reg)
	core.EnableBridgeMetrics(reg)
	par.EnableMetrics(reg)
	netlist.EnableMetrics(reg)
	if *simtrace > 0 {
		par.SetTraceCapture(*simtrace)
	}

	// The store metric family registers unconditionally (the catalog gate
	// diffs the full family set); without -store the counters just stay 0.
	storeMetrics := store.NewMetrics(reg)
	var st *store.Store
	var recovered *store.Recovered
	if *storeDir != "" {
		var err error
		st, recovered, err = store.Open(*storeDir, store.Options{Metrics: storeMetrics})
		if err != nil {
			fmt.Fprintf(os.Stderr, "simd: %v\n", err)
			return 1
		}
		defer st.Close()
	}

	eng := campaign.NewEngine(campaign.Options{
		Workers:       *workers,
		CheckEvery:    *checkEvery,
		MaxPoints:     *maxPoints,
		PointDeadline: *deadline,
		StallWindow:   *stall,
		MaxAttempts:   *retries,
		MaxActive:     *maxActive,
		Metrics:       campaign.NewMetrics(reg),
		Store:         st,
	})
	if recovered != nil {
		resumed, err := eng.Recover(recovered)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simd: %v\n", err)
			eng.Close()
			return 1
		}
		if len(resumed) > 0 || recovered.TornTails > 0 {
			fmt.Fprintf(os.Stderr, "simd: store %s: recovered %d cached points, resumed %d campaigns (%d torn tail records truncated)\n",
				*storeDir, len(recovered.Points), len(resumed), recovered.TornTails)
		}
	}
	var handler http.Handler = newServer(eng, reg)
	if *pprofOn {
		app := handler
		handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.HasPrefix(r.URL.Path, "/debug/pprof") {
				http.DefaultServeMux.ServeHTTP(w, r)
				return
			}
			app.ServeHTTP(w, r)
		})
	}
	// Slow-client hardening: a peer that trickles its headers or body
	// cannot pin a connection open indefinitely.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "simd: listening on %s\n", *addr)

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "simd: %v\n", err)
		eng.Close()
		return 1
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "simd: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "simd: shutdown: %v\n", err)
	}
	// Engine first (jobs settle and stop journaling), then the deferred
	// store Close commits the tail. Shutdown does NOT journal
	// cancellations: interrupted jobs stay "running" in the log and
	// resume on the next boot.
	eng.Close()
	return 0
}
