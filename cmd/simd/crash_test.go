package main

// The crash-recovery harness: the test binary re-execs ITSELF as the
// simd service (TestMain short-circuits into run() when the marker env
// var is set), SIGKILLs it mid-campaign at randomized moments, restarts
// it against the same -store directory and asserts the recovered
// service finishes the campaign with zero recomputation of journaled
// points and a results document byte-identical to an uninterrupted run.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/chaos"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/store"
)

const (
	crashServiceEnv = "SIMD_CRASH_SERVICE"
	crashArgsEnv    = "SIMD_CRASH_ARGS"
)

// TestMain turns the test binary into the service when re-exec'd by the
// crash harness; otherwise the tests run normally.
func TestMain(m *testing.M) {
	if os.Getenv(crashServiceEnv) == "1" {
		var args []string
		if err := json.Unmarshal([]byte(os.Getenv(crashArgsEnv)), &args); err != nil {
			fmt.Fprintf(os.Stderr, "crash child: bad args: %v\n", err)
			os.Exit(2)
		}
		os.Exit(run(args))
	}
	os.Exit(m.Run())
}

// The jittered chaos workload, registered in this binary so both the
// parent's in-process baseline and the re-exec'd service share it:
// scheduling jitter and deferred bridge flushes perturb every barrier
// round, while the outcome stays deterministic (dates and checksums
// only — no interleaving-dependent counters), so byte-identity holds
// even for sharded points.
func init() {
	scenario.Register(scenario.Model{
		Name: "chaos-jitter",
		Keys: []string{"stages", "words", "depth", "shards", "seed"},
		Run: func(ctx context.Context, p scenario.Params) (scenario.Outcome, error) {
			r := scenario.NewReader(p)
			w := chaos.Workload{
				Stages: r.Int("stages", 3),
				Words:  r.Int("words", 64),
				Depth:  r.Int("depth", 4),
				Shards: r.Int("shards", 1),
				Seed:   r.Int64("seed", 1),
			}
			if err := r.Err(); err != nil {
				return scenario.Outcome{}, err
			}
			b, fp := w.Build()
			defer b.Shutdown()
			if b.Coord != nil {
				b.Coord.SetHooks(chaos.Plan{
					Seed:           w.Seed,
					JitterMax:      200 * time.Microsecond,
					FlushDeferProb: 0.2,
				}.Hooks())
			}
			if err := b.RunGuarded(ctx, sim.RunForever); err != nil {
				return scenario.Outcome{}, err
			}
			return scenario.Outcome{
				SimEndNS:  int64(b.Kernels[0].Now() / sim.NS),
				DatesHash: fmt.Sprintf("%016x", fp()),
			}, nil
		},
	})
}

func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port
}

// service is one re-exec'd simd child process.
type service struct {
	cmd    *exec.Cmd
	url    string
	stderr *bytes.Buffer
}

// startService re-execs the test binary as simd on port against storeDir
// and waits until /healthz answers.
func startService(t *testing.T, port int, storeDir string) *service {
	t.Helper()
	args := []string{
		"-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-store", storeDir,
		"-workers", "2",
		"-check-every", "4",
		"-drain", "2s",
	}
	js, err := json.Marshal(args)
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), crashServiceEnv+"=1", crashArgsEnv+"="+string(js))
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	s := &service{cmd: cmd, url: fmt.Sprintf("http://127.0.0.1:%d", port), stderr: &stderr}
	deadline := time.Now().Add(20 * time.Second)
	for {
		resp, err := http.Get(s.url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return s
			}
		}
		if cmd.ProcessState != nil || time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("service never became healthy; stderr:\n%s", stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// kill SIGKILLs the child — no drain, no cleanup, a real crash.
func (s *service) kill() {
	s.cmd.Process.Kill()
	s.cmd.Wait()
}

// pollStatus fetches a campaign's status, failing on transport errors.
func pollStatus(t *testing.T, s *service, id string) campaign.Status {
	t.Helper()
	code, body := get(t, s.url+"/campaigns/"+id)
	if code != http.StatusOK {
		t.Fatalf("status %s: %d %s\nchild stderr:\n%s", id, code, body, s.stderr.String())
	}
	var st campaign.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// metricValue scans a Prometheus exposition for an unlabelled counter.
func metricValue(t *testing.T, expo []byte, family string) uint64 {
	t.Helper()
	for _, line := range strings.Split(string(expo), "\n") {
		if strings.HasPrefix(line, family+" ") {
			v, err := strconv.ParseUint(strings.TrimSpace(strings.TrimPrefix(line, family+" ")), 10, 64)
			if err != nil {
				t.Fatalf("parsing %s from %q: %v", family, line, err)
			}
			return v
		}
	}
	t.Fatalf("family %s missing from exposition", family)
	return 0
}

// baseline runs the spec in-process with the same execution options the
// child uses and returns the canonical JSON and CSV documents.
func baseline(t *testing.T, spec string) (jsonDoc, csvDoc []byte) {
	t.Helper()
	set, err := scenario.ParseSet([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.Run(context.Background(), set, campaign.Options{
		Workers: 2, CheckEvery: 4, MaxAttempts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var jbuf, cbuf bytes.Buffer
	if err := res.JSON(&jbuf, false); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteCSV(&cbuf, false); err != nil {
		t.Fatal(err)
	}
	return jbuf.Bytes(), cbuf.Bytes()
}

// crashCycle drives the shared harness: submit spec to a fresh service,
// SIGKILL/restart it `kills` times at randomized moments (the last kill
// waits for visible progress first, so the final recovery always has
// journaled points to reuse), then assert the final document matches the
// uninterrupted baseline byte for byte and that every journaled point
// was served from the recovered cache.
func crashCycle(t *testing.T, spec string, kills int) {
	dir := t.TempDir()
	port := freePort(t)
	wantJSON, wantCSV := baseline(t, spec)

	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	s := startService(t, port, dir)
	alive := true
	t.Cleanup(func() {
		if alive {
			s.kill()
		}
	})

	code, body := post(t, s.url+"/campaigns", spec)
	if code != http.StatusCreated {
		t.Fatalf("submit: %d %s", code, body)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	id := created.ID

	for k := 0; k < kills; k++ {
		if k == kills-1 {
			// Before the last kill, wait for progress so the final
			// restart demonstrably reuses journaled work.
			deadline := time.Now().Add(30 * time.Second)
			for pollStatus(t, s, id).Done < 2 && time.Now().Before(deadline) {
				time.Sleep(5 * time.Millisecond)
			}
			time.Sleep(60 * time.Millisecond) // let the group commit land
		} else {
			time.Sleep(time.Duration(10+rng.Intn(120)) * time.Millisecond)
		}
		s.kill()
		s = startService(t, port, dir) // some restarts die mid-resume
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		st := pollStatus(t, s, id)
		if st.State == campaign.JobDone {
			if !st.Resumed {
				t.Errorf("final status does not carry resumed: %+v", st)
			}
			break
		}
		if st.State != campaign.JobRunning || time.Now().After(deadline) {
			t.Fatalf("campaign state %s after restarts: %+v\nchild stderr:\n%s", st.State, st, s.stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// GET /campaigns marks the recovered campaign resumed.
	if _, body := get(t, s.url+"/campaigns"); !strings.Contains(string(body), `"resumed": true`) {
		t.Errorf("campaign list misses resumed flag: %s", body)
	}

	// Byte-identical documents, both formats.
	if code, gotJSON := get(t, s.url+"/campaigns/"+id+"/results"); code != http.StatusOK {
		t.Fatalf("results: %d %s", code, gotJSON)
	} else if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("recovered JSON differs from uninterrupted run:\n--- want\n%s\n--- got\n%s", wantJSON, gotJSON)
	}
	if code, gotCSV := get(t, s.url+"/campaigns/"+id+"/results?format=csv"); code != http.StatusOK {
		t.Fatalf("csv results: %d", code)
	} else if !bytes.Equal(gotCSV, wantCSV) {
		t.Errorf("recovered CSV differs from uninterrupted run:\n--- want\n%s\n--- got\n%s", wantCSV, gotCSV)
	}

	// Zero recomputation: every point recovered from the journal at boot
	// was served as a cache hit, never re-executed — and the last kill
	// guaranteed there were some.
	_, expo := get(t, s.url+"/metrics")
	recovered := metricValue(t, expo, "store_recovered_points_total")
	hits := metricValue(t, expo, "campaign_cache_hits_total")
	if recovered == 0 {
		t.Error("final restart recovered 0 journaled points; the harness lost its progress guarantee")
	}
	if hits != recovered {
		t.Errorf("cache hits (%d) != recovered points (%d): journaled work was recomputed or double-counted", hits, recovered)
	}

	// The per-point provenance agrees with the metrics: with ?wall=1 the
	// journal-served points carry Cached.
	_, wallBody := get(t, s.url+"/campaigns/"+id+"/results?wall=1")
	var wallDoc campaign.Results
	if err := json.Unmarshal(wallBody, &wallDoc); err != nil {
		t.Fatal(err)
	}
	var cached uint64
	for _, p := range wallDoc.Points {
		if p.Cached && !p.Dedup {
			cached++
		}
	}
	if cached != recovered {
		t.Errorf("%d points marked cached, %d recovered from journal", cached, recovered)
	}

	s.kill()
	alive = false
}

// TestCrashRecovery is the tentpole acceptance test: a deterministic
// pipeline sweep, killed and restarted repeatedly (including mid-resume),
// must finish with byte-identical output and zero recomputation.
func TestCrashRecovery(t *testing.T) {
	crashCycle(t, `{
		"name": "crash",
		"model": "pipeline",
		"params": {"blocks": 6, "words_per_block": 300},
		"matrix": {"depth": [1, 2, 3, 4, 5, 6]}
	}`, 3)
}

// TestTombstoneAnswers410: a campaign cancelled before a restart is
// recovered as a settled tombstone — listed, not resumed, its results
// gone for good.
func TestTombstoneAnswers410(t *testing.T) {
	dir := t.TempDir()
	st, _, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := json.Marshal(scenario.Set{Specs: []scenario.Spec{
		{Model: "kpn", Params: scenario.Params{"tokens": 4}},
	}})
	st.JobSubmitted("c1", "doomed", 1, 1, spec)
	st.JobCancelled("c1")
	st.Close()

	st2, rec, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := campaign.NewEngine(campaign.Options{Workers: 2, Store: st2})
	if _, err := eng.Recover(rec); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(eng, nil))
	t.Cleanup(func() {
		ts.Close()
		eng.Close()
		st2.Close()
	})

	code, body := get(t, ts.URL+"/campaigns/c1")
	if code != http.StatusOK || !strings.Contains(string(body), `"cancelled"`) {
		t.Fatalf("tombstone status: %d %s", code, body)
	}
	if code, body := get(t, ts.URL+"/campaigns/c1/results"); code != http.StatusGone {
		t.Errorf("tombstone results: %d %s, want 410", code, body)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/campaigns/c1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("DELETE tombstone: %d, want 409", resp.StatusCode)
	}
}

// TestCrashSoakChaosJitter combines the chaos layer's scheduling jitter
// (sharded points, perturbed barrier rounds, deferred flushes) with
// mid-run SIGKILL — the cross-layer soak. Run under -race in CI.
func TestCrashSoakChaosJitter(t *testing.T) {
	if testing.Short() {
		t.Skip("soak: skipped in -short")
	}
	crashCycle(t, `{
		"name": "soak",
		"model": "chaos-jitter",
		"params": {"words": 96, "depth": 4},
		"matrix": {"shards": [1, 2], "seed": [1, 2, 3]}
	}`, 2)
}
