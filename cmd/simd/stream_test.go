package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
)

func submitAndWait(t *testing.T, url, spec string) string {
	t.Helper()
	code, body := post(t, url+"/campaigns", spec)
	if code != http.StatusCreated {
		t.Fatalf("submit: %d %s", code, body)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, body = get(t, url+"/campaigns/"+created.ID)
		if code != http.StatusOK {
			t.Fatalf("status: %d %s", code, body)
		}
		var st campaign.Status
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == campaign.JobDone {
			return created.ID
		}
		if st.State != campaign.JobRunning || time.Now().After(deadline) {
			t.Fatalf("campaign state %s: %s", st.State, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStreamMatchesBuffered pins the streaming satellite's core contract:
// the streamed CSV is byte-identical to the buffered document, and the
// NDJSON rows carry the same objects in the same order.
func TestStreamMatchesBuffered(t *testing.T) {
	ts, _ := newTestServer(t)
	id := submitAndWait(t, ts.URL, `{
		"name": "st",
		"model": "kpn",
		"params": {"tokens": 6},
		"matrix": {"depth": [1, 2], "stages": [2, 3]}
	}`)
	base := ts.URL + "/campaigns/" + id + "/results"

	_, bufCSV := get(t, base+"?format=csv")
	code, streamCSV := get(t, base+"?format=csv&stream=1")
	if code != http.StatusOK {
		t.Fatalf("stream csv: %d %s", code, streamCSV)
	}
	if !bytes.Equal(bufCSV, streamCSV) {
		t.Errorf("streamed CSV differs from buffered:\n--- buffered\n%s\n--- streamed\n%s", bufCSV, streamCSV)
	}

	_, bufJSON := get(t, base)
	var doc campaign.Results
	if err := json.Unmarshal(bufJSON, &doc); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(base + "?stream=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type = %q", ct)
	}
	nd, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(nd)), "\n")
	if len(lines) != len(doc.Points)+1 {
		t.Fatalf("stream has %d lines, want %d points + aggregate", len(lines), len(doc.Points))
	}
	for i, line := range lines[:len(lines)-1] {
		var pr campaign.PointResult
		if err := json.Unmarshal([]byte(line), &pr); err != nil {
			t.Fatalf("line %d: %v (%s)", i, err, line)
		}
		a, _ := json.Marshal(pr)
		b, _ := json.Marshal(doc.Points[i])
		if !bytes.Equal(a, b) {
			t.Errorf("stream row %d differs from document:\n%s\n%s", i, a, b)
		}
	}
	var agg struct {
		Aggregate *campaign.Aggregate `json:"aggregate"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &agg); err != nil || agg.Aggregate == nil {
		t.Fatalf("trailing line is not the aggregate: %s (%v)", lines[len(lines)-1], err)
	}
	if agg.Aggregate.Points != doc.Aggregate.Points {
		t.Errorf("stream aggregate = %+v, document = %+v", agg.Aggregate, doc.Aggregate)
	}
}

// TestStreamWhileRunning: the streaming endpoint answers 200 and holds
// the connection while the campaign still runs — where the buffered
// endpoint answers 409 — then completes the exact buffered bytes.
func TestStreamWhileRunning(t *testing.T) {
	release := armSlowGate()
	defer release()
	ts, _ := newTestServer(t)
	code, body := post(t, ts.URL+"/campaigns", `{"model": "slow-test", "matrix": {"id": [1, 2]}}`)
	if code != http.StatusCreated {
		t.Fatalf("submit: %d %s", code, body)
	}
	var created struct {
		ID string `json:"id"`
	}
	json.Unmarshal(body, &created)
	base := ts.URL + "/campaigns/" + created.ID + "/results"

	// Buffered: still 409.
	if code, _ := get(t, base); code != http.StatusConflict {
		t.Fatalf("buffered results while running: %d, want 409", code)
	}
	// Streaming: 200 immediately, body pending.
	resp, err := http.Get(base + "?stream=1&format=csv")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream while running: %d, want 200", resp.StatusCode)
	}
	// The campaign really is still running while the stream is open.
	code, body = get(t, ts.URL+"/campaigns/"+created.ID)
	var st campaign.Status
	json.Unmarshal(body, &st)
	if code != http.StatusOK || st.State != campaign.JobRunning {
		t.Fatalf("status while stream open: %d %s", code, body)
	}

	release()
	streamed, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	// Settle, then compare against the buffered document.
	deadline := time.Now().Add(30 * time.Second)
	var buffered []byte
	for {
		code, buffered = get(t, base+"?format=csv")
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("results never settled: %d %s", code, buffered)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !bytes.Equal(streamed, buffered) {
		t.Errorf("mid-run stream differs from buffered document:\n--- streamed\n%s\n--- buffered\n%s", streamed, buffered)
	}
}

// TestCancelFinishedCampaign: cancelling a campaign that already
// completed answers 409 with a distinct "already complete" message and
// the unchanged status — not the 202 a live cancellation gets, and not
// a 404.
func TestCancelFinishedCampaign(t *testing.T) {
	ts, _ := newTestServer(t)
	id := submitAndWait(t, ts.URL, `{"model": "kpn", "params": {"tokens": 4}}`)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/campaigns/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("DELETE finished campaign: %d %s, want 409", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "already complete") {
		t.Errorf("409 body misses the already-complete message: %s", body)
	}
	var doc struct {
		Status campaign.Status `json:"status"`
	}
	if err := json.Unmarshal(body, &doc); err != nil || doc.Status.State != campaign.JobDone {
		t.Errorf("409 body status = %+v (%v), want done", doc.Status, err)
	}
}

// TestStreamBadFormat: format validation happens before streaming starts.
func TestStreamBadFormat(t *testing.T) {
	ts, _ := newTestServer(t)
	id := submitAndWait(t, ts.URL, `{"model": "kpn", "params": {"tokens": 4}}`)
	if code, _ := get(t, ts.URL+"/campaigns/"+id+"/results?stream=1&format=yaml"); code != http.StatusBadRequest {
		t.Errorf("stream with unknown format: %d, want 400", code)
	}
}
