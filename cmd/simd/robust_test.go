package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/leakcheck"
)

// newRobustServer is newTestServer with defer-ordered teardown: the
// returned close func shuts everything down before the caller's
// leakcheck defer fires (t.Cleanup would run after it).
func newRobustServer(opts campaign.Options) (*httptest.Server, *campaign.Engine, func()) {
	eng := campaign.NewEngine(opts)
	ts := httptest.NewServer(newServer(eng, nil))
	return ts, eng, func() {
		ts.Close()
		eng.Close()
		http.DefaultClient.CloseIdleConnections()
	}
}

func doReq(t *testing.T, method, url, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Drain and close eagerly: these tests leak-check their goroutines,
	// and an open body pins the connection past the check.
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp
}

// TestCancelCampaign: DELETE interrupts a running campaign; the job
// settles as cancelled and its partial results stay served.
func TestCancelCampaign(t *testing.T) {
	defer leakcheck.Check(t)()
	ts, eng, done := newRobustServer(campaign.Options{Workers: 2})
	defer done()
	release := armSlowGate()
	defer release()

	code, body := post(t, ts.URL+"/campaigns", `{"model":"slow-test","matrix":{"id":[1,2,3,4]}}`)
	if code != http.StatusCreated {
		t.Fatalf("submit: %d %s", code, body)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}

	resp := doReq(t, http.MethodDelete, ts.URL+"/campaigns/"+created.ID, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}
	job, _ := eng.Job(created.ID)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := job.Status(); st.State == campaign.JobCancelled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never settled cancelled: %+v", job.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Partial results are kept and served.
	code, body = get(t, ts.URL+"/campaigns/"+created.ID+"/results")
	if code != http.StatusOK {
		t.Fatalf("results after cancel: %d %s", code, body)
	}
	if !bytes.Contains(body, []byte("cancel")) {
		t.Errorf("partial results should mark cancelled points: %s", body)
	}

	resp = doReq(t, http.MethodDelete, ts.URL+"/campaigns/nope", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("cancel unknown id: %d, want 404", resp.StatusCode)
	}
}

// TestBusyQueue: with MaxActive=1 a second live campaign answers 429
// with a Retry-After, and submission works again once the first drains.
func TestBusyQueue(t *testing.T) {
	defer leakcheck.Check(t)()
	ts, eng, done := newRobustServer(campaign.Options{Workers: 2, MaxActive: 1})
	defer done()
	release := armSlowGate()
	defer release()

	code, body := post(t, ts.URL+"/campaigns", `{"model":"slow-test","params":{"id":1}}`)
	if code != http.StatusCreated {
		t.Fatalf("first submit: %d %s", code, body)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}

	resp := doReq(t, http.MethodPost, ts.URL+"/campaigns", `{"model":"slow-test","params":{"id":2}}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}

	release()
	job, _ := eng.Job(created.ID)
	if _, err := job.Wait(t.Context()); err != nil {
		t.Fatalf("first campaign: %v", err)
	}
	if code, body = post(t, ts.URL+"/campaigns", `{"model":"slow-test","params":{"id":3}}`); code != http.StatusCreated {
		t.Fatalf("submit after drain: %d %s", code, body)
	}
}

// TestPanicRecovery: a panicking handler answers 500 instead of killing
// the connection.
func TestPanicRecovery(t *testing.T) {
	defer leakcheck.Check(t)()
	eng := campaign.NewEngine(campaign.Options{Workers: 1})
	s := newServer(eng, nil)
	s.mux.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	ts := httptest.NewServer(s)
	defer func() {
		ts.Close()
		eng.Close()
		http.DefaultClient.CloseIdleConnections()
	}()

	code, body := get(t, ts.URL+"/boom")
	if code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: %d %s", code, body)
	}
	if !bytes.Contains(body, []byte("kaboom")) {
		t.Errorf("500 body should carry the panic value: %s", body)
	}
	// The server survives and keeps answering.
	if code, _ := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("healthz after panic: %d", code)
	}
}

// TestMalformedRequests: byte-level junk, oversized bodies and bad
// parameters all map to structured 4xx errors, never a hang or a 500.
func TestMalformedRequests(t *testing.T) {
	defer leakcheck.Check(t)()
	ts, _, done := newRobustServer(campaign.Options{Workers: 2})
	defer done()

	cases := []struct {
		name, method, path, body string
		want                     int
	}{
		{"junk body", "POST", "/campaigns", "{not json", http.StatusBadRequest},
		{"empty body", "POST", "/campaigns", "", http.StatusBadRequest},
		{"unknown model", "POST", "/campaigns", `{"model":"no-such-model"}`, http.StatusBadRequest},
		{"oversize body", "POST", "/campaigns",
			`{"model":"kpn","params":{"pad":"` + strings.Repeat("x", maxSpecBytes) + `"}}`,
			http.StatusRequestEntityTooLarge},
		{"unknown campaign", "GET", "/campaigns/zzz", "", http.StatusNotFound},
		{"unknown results", "GET", "/campaigns/zzz/results", "", http.StatusNotFound},
		{"bad method", "PUT", "/campaigns", "", http.StatusMethodNotAllowed},
	}
	for _, c := range cases {
		resp := doReq(t, c.method, ts.URL+c.path, c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s: %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}

	// Bad ?format on a finished campaign.
	code, body := post(t, ts.URL+"/campaigns", `{"model":"kpn","params":{"tokens":4}}`)
	if code != http.StatusCreated {
		t.Fatalf("submit: %d %s", code, body)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, _ = get(t, fmt.Sprintf("%s/campaigns/%s/results?format=xml", ts.URL, created.ID))
		if code != http.StatusConflict || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code != http.StatusBadRequest {
		t.Errorf("bad format: %d, want 400", code)
	}
}
