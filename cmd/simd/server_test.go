package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/scenario"
)

// The slow model blocks until released, so tests can observe a campaign
// mid-flight deterministically. The gate is re-armed per use so repeated
// runs in one process (go test -count=N) work.
var (
	slowMu   sync.Mutex
	slowGate = make(chan struct{})
)

func slowChan() chan struct{} {
	slowMu.Lock()
	defer slowMu.Unlock()
	return slowGate
}

// armSlowGate installs a fresh closed-over gate and returns its release
// function (idempotent).
func armSlowGate() (release func()) {
	slowMu.Lock()
	defer slowMu.Unlock()
	g := make(chan struct{})
	slowGate = g
	var once sync.Once
	return func() { once.Do(func() { close(g) }) }
}

func init() {
	scenario.Register(scenario.Model{
		Name: "slow-test",
		Keys: []string{"id"},
		Run: func(ctx context.Context, p scenario.Params) (scenario.Outcome, error) {
			select {
			case <-slowChan():
			case <-ctx.Done():
				return scenario.Outcome{}, ctx.Err()
			}
			return scenario.Outcome{SimEndNS: 1, CtxSwitches: 1}, nil
		},
	})
}

func newTestServer(t *testing.T) (*httptest.Server, *campaign.Engine) {
	t.Helper()
	eng := campaign.NewEngine(campaign.Options{Workers: 2, CheckEvery: 2})
	ts := httptest.NewServer(newServer(eng, nil))
	t.Cleanup(func() {
		ts.Close()
		eng.Close()
	})
	return ts, eng
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func post(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// TestCampaignRoundTrip drives a live campaign end to end over HTTP:
// submit, poll status to done, fetch JSON and CSV results.
func TestCampaignRoundTrip(t *testing.T) {
	ts, _ := newTestServer(t)
	spec := `{
		"name": "rt",
		"model": "kpn",
		"params": {"tokens": 6},
		"matrix": {"depth": [1, 2], "stages": [2, 3]}
	}`
	code, body := post(t, ts.URL+"/campaigns", spec)
	if code != http.StatusCreated {
		t.Fatalf("submit: %d %s", code, body)
	}
	var created struct {
		ID     string `json:"id"`
		Points int    `json:"points"`
	}
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	if created.ID == "" || created.Points != 4 {
		t.Fatalf("created = %+v", created)
	}

	// Poll status until done.
	deadline := time.Now().Add(30 * time.Second)
	var st campaign.Status
	for {
		code, body = get(t, ts.URL+"/campaigns/"+created.ID)
		if code != http.StatusOK {
			t.Fatalf("status: %d %s", code, body)
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == campaign.JobDone {
			break
		}
		if st.State == campaign.JobFailed {
			t.Fatalf("campaign failed: %+v", st)
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign still %s after 30s: %+v", st.State, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.Aggregate == nil || st.Aggregate.Points != 4 || st.Aggregate.Errors != 0 {
		t.Fatalf("done status: %+v", st)
	}

	// JSON results: deterministic (no timing), 4 points.
	code, body = get(t, ts.URL+"/campaigns/"+created.ID+"/results")
	if code != http.StatusOK {
		t.Fatalf("results: %d %s", code, body)
	}
	var res campaign.Results
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 || res.Timing != nil {
		t.Fatalf("results: %d points, timing %v", len(res.Points), res.Timing)
	}
	for _, p := range res.Points {
		if p.Outcome == nil || p.WallMS != 0 {
			t.Errorf("point %d: outcome %v, wall %v (want deterministic doc)", p.Index, p.Outcome, p.WallMS)
		}
	}

	// With ?wall=1 the timing section appears.
	_, body = get(t, ts.URL+"/campaigns/"+created.ID+"/results?wall=1")
	var withTiming campaign.Results
	if err := json.Unmarshal(body, &withTiming); err != nil {
		t.Fatal(err)
	}
	if withTiming.Timing == nil {
		t.Error("results?wall=1 misses the timing section")
	}

	// CSV results.
	code, body = get(t, ts.URL+"/campaigns/"+created.ID+"/results?format=csv")
	if code != http.StatusOK {
		t.Fatalf("csv results: %d", code)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 5 || !strings.HasPrefix(lines[0], "index,model,hash") {
		t.Fatalf("csv: %d lines, header %q", len(lines), lines[0])
	}

	// Campaign list includes it.
	_, body = get(t, ts.URL+"/campaigns")
	if !strings.Contains(string(body), created.ID) {
		t.Errorf("campaign list misses %s: %s", created.ID, body)
	}
}

// TestMalformedSpecs covers the 4xx paths of POST /campaigns.
func TestMalformedSpecs(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct {
		name, body string
		wantCode   int
	}{
		{"broken JSON", `{"model": "pipeli`, http.StatusBadRequest},
		{"no model", `{"params": {"depth": 4}}`, http.StatusBadRequest},
		{"unknown model", `{"model": "warpdrive"}`, http.StatusBadRequest},
		{"unknown key", `{"model": "pipeline", "params": {"depthh": 4}}`, http.StatusBadRequest},
		{"empty axis", `{"model": "pipeline", "matrix": {"depth": []}}`, http.StatusBadRequest},
		{"fixed and swept", `{"model": "pipeline", "params": {"depth": 1}, "matrix": {"depth": [2]}}`, http.StatusBadRequest},
		{"non-scalar value", `{"model": "pipeline", "params": {"depth": {"a": 1}}}`, http.StatusBadRequest},
		{"oversize matrix", fmt.Sprintf(`{"model": "kpn", "matrix": {"tokens": [%s]}}`,
			strings.Trim(strings.Repeat("5,", 11000), ",")), http.StatusBadRequest},
	}
	for _, c := range cases {
		code, body := post(t, ts.URL+"/campaigns", c.body)
		if code != c.wantCode {
			t.Errorf("%s: status %d (want %d): %s", c.name, code, c.wantCode, body)
		}
		if !strings.Contains(string(body), `"error"`) {
			t.Errorf("%s: response carries no error field: %s", c.name, body)
		}
	}
}

// TestNotFoundAndBadRoutes covers 404/405 handling.
func TestNotFoundAndBadRoutes(t *testing.T) {
	ts, _ := newTestServer(t)
	if code, _ := get(t, ts.URL+"/campaigns/c999"); code != http.StatusNotFound {
		t.Errorf("status of unknown campaign: %d, want 404", code)
	}
	if code, _ := get(t, ts.URL+"/campaigns/c999/results"); code != http.StatusNotFound {
		t.Errorf("results of unknown campaign: %d, want 404", code)
	}
	resp, err := http.Get(ts.URL + "/campaigns/c999/results/extra")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("deep path: %d, want 404", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/campaigns", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE /campaigns: %d, want 405", resp.StatusCode)
	}
}

// TestResultsWhileRunning pins the 409 contract using the gated model.
func TestResultsWhileRunning(t *testing.T) {
	release := armSlowGate()
	defer release() // never leave the engine's worker blocked
	ts, _ := newTestServer(t)
	code, body := post(t, ts.URL+"/campaigns", `{"model": "slow-test"}`)
	if code != http.StatusCreated {
		t.Fatalf("submit: %d %s", code, body)
	}
	var created struct {
		ID string `json:"id"`
	}
	json.Unmarshal(body, &created)

	code, body = get(t, ts.URL+"/campaigns/"+created.ID+"/results")
	if code != http.StatusConflict {
		t.Fatalf("results while running: %d %s, want 409", code, body)
	}
	var st campaign.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != campaign.JobRunning {
		t.Errorf("409 body state = %s, want running", st.State)
	}

	release() // let the model finish
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, body = get(t, ts.URL+"/campaigns/"+created.ID+"/results")
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("results never became available: %d %s", code, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code, _ := get(t, ts.URL+"/campaigns/"+created.ID+"/results?format=yaml"); code != http.StatusBadRequest {
		t.Errorf("unknown format: %d, want 400", code)
	}
}

// TestModelsAndHealth covers the discovery endpoints.
func TestModelsAndHealth(t *testing.T) {
	ts, _ := newTestServer(t)
	code, body := get(t, ts.URL+"/models")
	if code != http.StatusOK {
		t.Fatalf("models: %d", code)
	}
	for _, m := range []string{"pipeline", "soc", "soc-clustered", "kpn", "noc"} {
		if !strings.Contains(string(body), `"`+m+`"`) {
			t.Errorf("model %q missing from %s", m, body)
		}
	}
	code, body = get(t, ts.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(string(body), `"ok": true`) {
		t.Errorf("healthz: %d %s", code, body)
	}
}

// TestTopologyAxisSweep is the acceptance path of the netlist layer: a
// JSON campaign spec sweeping topology kind × shard count × partitioner,
// end to end through the HTTP service, with the dated-log digests of one
// topology identical across every partitioning.
func TestTopologyAxisSweep(t *testing.T) {
	ts, _ := newTestServer(t)
	spec := `{
		"name": "topo",
		"specs": [
			{"model": "netlist",
			 "params": {"kind": "mesh", "width": 2, "height": 2, "words": 8, "depth": 2},
			 "matrix": {"shards": [1, 2, 4], "partitioner": ["roundrobin", "mincut"]}},
			{"model": "netlist",
			 "params": {"words": 8, "depth": 2, "shards": 2},
			 "matrix": {"kind": ["chain", "ring", "tree"]}}
		]
	}`
	code, body := post(t, ts.URL+"/campaigns", spec)
	if code != http.StatusCreated {
		t.Fatalf("submit: %d %s", code, body)
	}
	var created struct {
		ID     string `json:"id"`
		Points int    `json:"points"`
	}
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	if created.Points != 9 {
		t.Fatalf("created = %+v, want 9 points", created)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st campaign.Status
		code, body = get(t, ts.URL+"/campaigns/"+created.ID)
		if code != http.StatusOK {
			t.Fatalf("status: %d %s", code, body)
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == campaign.JobDone {
			break
		}
		if st.State == campaign.JobFailed || time.Now().After(deadline) {
			t.Fatalf("campaign state %s: %+v", st.State, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	code, body = get(t, ts.URL+"/campaigns/"+created.ID+"/results")
	if code != http.StatusOK {
		t.Fatalf("results: %d %s", code, body)
	}
	var res struct {
		Points []struct {
			Params  map[string]any `json:"params"`
			Error   string         `json:"error,omitempty"`
			Outcome *struct {
				DatesHash string `json:"dates_hash"`
				Counters  map[string]uint64
			} `json:"outcome,omitempty"`
		} `json:"points"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	meshDigests := map[string]bool{}
	kinds := map[string]bool{}
	for _, p := range res.Points {
		if p.Error != "" || p.Outcome == nil {
			t.Fatalf("point %v failed: %s", p.Params, p.Error)
		}
		kinds[fmt.Sprint(p.Params["kind"])] = true
		if p.Params["height"] != nil {
			meshDigests[p.Outcome.DatesHash] = true
		}
	}
	if len(meshDigests) != 1 {
		t.Errorf("mesh digests differ across shards × partitioners: %v", meshDigests)
	}
	for _, k := range []string{"mesh", "chain", "ring", "tree"} {
		if !kinds[k] {
			t.Errorf("kind %s missing from swept results", k)
		}
	}
}
