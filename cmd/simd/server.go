package main

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime/debug"
	"time"

	"repro/internal/campaign"
	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/scenario"
)

// maxSpecBytes bounds a campaign submission body.
const maxSpecBytes = 1 << 20

// server routes the campaign API onto an engine. It is an http.Handler so
// tests drive it through httptest.
type server struct {
	eng   *campaign.Engine
	reg   *metrics.Registry
	mux   *http.ServeMux
	start time.Time
}

// newServer mounts the campaign API plus the observability surface:
// /metrics scrapes reg (a nil reg gets a fresh empty registry, so the
// endpoint is always a valid exposition), /campaigns/{id}/stats serves
// live counters, /debug/trace dumps the last captured scheduler
// timeline.
func newServer(eng *campaign.Engine, reg *metrics.Registry) *server {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &server{eng: eng, reg: reg, mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("GET /healthz", s.health)
	s.mux.HandleFunc("GET /metrics", s.metrics)
	s.mux.HandleFunc("GET /models", s.models)
	s.mux.HandleFunc("POST /campaigns", s.submit)
	s.mux.HandleFunc("GET /campaigns", s.list)
	s.mux.HandleFunc("GET /campaigns/{id}", s.status)
	s.mux.HandleFunc("DELETE /campaigns/{id}", s.cancel)
	s.mux.HandleFunc("GET /campaigns/{id}/results", s.results)
	s.mux.HandleFunc("GET /campaigns/{id}/stats", s.stats)
	s.mux.HandleFunc("GET /debug/trace", s.trace)
	return s
}

// ServeHTTP wraps the mux in the panic-recovery middleware: a handler
// panic answers 500 instead of tearing the connection (and, under
// net/http, only that connection) down with a stack dump to stderr.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			debug.PrintStack()
			writeError(w, http.StatusInternalServerError, "internal error: %v", rec)
		}
	}()
	s.mux.ServeHTTP(w, r)
}

// writeJSON emits one API response document.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	campaign.WriteJSON(w, v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *server) health(w http.ResponseWriter, r *http.Request) {
	doc := map[string]any{
		"ok":        true,
		"campaigns": len(s.eng.Jobs()),
		"uptime_s":  time.Since(s.start).Seconds(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		doc["go"] = bi.GoVersion
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" {
				doc["revision"] = kv.Value
			}
		}
	}
	writeJSON(w, http.StatusOK, doc)
}

// metrics serves the registry in Prometheus text exposition format.
func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", metrics.ContentType)
	s.reg.WritePrometheus(w)
}

// stats serves a campaign's live counters — unlike /results this works
// (and moves) while the campaign runs.
func (s *server) stats(w http.ResponseWriter, r *http.Request) {
	job, ok := s.eng.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, job.Live())
}

// trace serves the most recent scheduler timeline as Chrome trace_event
// JSON (loadable in chrome://tracing or ui.perfetto.dev). Capture is
// armed by the -simtrace flag; until a multi-shard run completes there
// is nothing to serve and the endpoint answers 404.
func (s *server) trace(w http.ResponseWriter, r *http.Request) {
	tl := par.LastTrace()
	if tl == nil {
		writeError(w, http.StatusNotFound, "no timeline captured (start simd with -simtrace and run a multi-shard campaign)")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	tl.WriteChromeTrace(w)
}

func (s *server) models(w http.ResponseWriter, r *http.Request) {
	type modelDoc struct {
		Name string   `json:"name"`
		Keys []string `json:"keys"`
	}
	var docs []modelDoc
	for _, name := range scenario.Models() {
		m, _ := scenario.Lookup(name)
		docs = append(docs, modelDoc{Name: m.Name, Keys: m.Keys})
	}
	writeJSON(w, http.StatusOK, map[string]any{"models": docs})
}

// submit accepts a Spec or Set document and starts a campaign. The body
// is bounded by http.MaxBytesReader (413 beyond it); a full job queue
// answers 429 with a Retry-After.
func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, "spec exceeds %d bytes", maxSpecBytes)
			return
		}
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	set, err := scenario.ParseSet(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	job, err := s.eng.Submit(set)
	if err != nil {
		if errors.Is(err, campaign.ErrBusy) {
			w.Header().Set("Retry-After", "5")
			writeError(w, http.StatusTooManyRequests, "%v", err)
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	st := job.Status()
	w.Header().Set("Location", "/campaigns/"+job.ID())
	writeJSON(w, http.StatusCreated, map[string]any{
		"id":      job.ID(),
		"points":  st.Points,
		"unique":  st.Total,
		"status":  "/campaigns/" + job.ID(),
		"results": "/campaigns/" + job.ID() + "/results",
	})
}

func (s *server) list(w http.ResponseWriter, r *http.Request) {
	jobs := s.eng.Jobs()
	statuses := make([]campaign.Status, len(jobs))
	for i, j := range jobs {
		statuses[i] = j.Status()
	}
	writeJSON(w, http.StatusOK, map[string]any{"campaigns": statuses})
}

// cancel interrupts a running campaign cooperatively; the partial
// results stay available. A campaign that already settled answers 409
// with its (unchanged) status — distinct from the 202 a live
// cancellation gets — and no cancellation is journaled, so a finished
// job keeps its real terminal state across restarts.
func (s *server) cancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	switch s.eng.Cancel(id) {
	case campaign.CancelUnknown:
		writeError(w, http.StatusNotFound, "no campaign %q", id)
	case campaign.CancelAlreadySettled:
		job, _ := s.eng.Job(id)
		st := job.Status()
		writeJSON(w, http.StatusConflict, map[string]any{
			"error":  fmt.Sprintf("campaign %q already complete (state %s): nothing to cancel", id, st.State),
			"status": st,
		})
	default: // CancelRequested
		job, _ := s.eng.Job(id)
		writeJSON(w, http.StatusAccepted, job.Status())
	}
}

func (s *server) status(w http.ResponseWriter, r *http.Request) {
	job, ok := s.eng.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

// results serves the finished document as JSON (default) or CSV
// (?format=csv). Wall-clock timing is included only with ?wall=1, keeping
// the default document deterministic. A still-running campaign answers
// 409 with the progress snapshot — unless ?stream=1 is set, which serves
// completed points incrementally instead of waiting (see stream).
func (s *server) results(w http.ResponseWriter, r *http.Request) {
	job, ok := s.eng.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
		return
	}
	format := r.URL.Query().Get("format")
	if format != "" && format != "json" && format != "csv" {
		writeError(w, http.StatusBadRequest, "unknown format %q (want json or csv)", format)
		return
	}
	includeWall := r.URL.Query().Get("wall") == "1"
	if r.URL.Query().Get("stream") == "1" {
		s.stream200(w, r, job, format, includeWall)
		return
	}
	res, jobErr, done := job.Results()
	if !done {
		writeJSON(w, http.StatusConflict, job.Status())
		return
	}
	if jobErr != nil && res == nil {
		if job.Status().State == campaign.JobCancelled {
			writeError(w, http.StatusGone, "campaign %q was cancelled before a restart; its partial results were not retained", job.ID())
			return
		}
		writeError(w, http.StatusInternalServerError, "campaign failed: %v", jobErr)
		return
	}
	switch format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		res.JSON(w, includeWall)
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		res.WriteCSV(w, includeWall)
	}
}

// stream200 serves the results incrementally: rows are written (and
// flushed) as points complete, in expansion order, instead of answering
// 409 until the campaign settles. CSV output is the exact buffered
// document — same header, same column order, same bytes once complete.
// JSON output is newline-delimited: one compact PointResult object per
// line in the buffered document's field order, then one final line
// carrying the aggregate (or the job status, if the campaign was cut
// short). A client disconnect just abandons the walk; the campaign is
// unaffected.
func (s *server) stream200(w http.ResponseWriter, r *http.Request, job *campaign.Job, format string, includeWall bool) {
	n := job.NumPoints()
	if n == 0 {
		writeError(w, http.StatusGone, "campaign %q retained no streamable points", job.ID())
		return
	}
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	emitJSON := format == "" || format == "json"
	var csvw *campaign.CSV
	if emitJSON {
		w.Header().Set("Content-Type", "application/x-ndjson")
	} else {
		w.Header().Set("Content-Type", "text/csv")
		csvw = campaign.NewCSV(w, campaign.CSVColumns...)
	}
	w.WriteHeader(http.StatusOK)
	flush()
	for i := 0; i < n; i++ {
		pr, err := job.StreamPoint(r.Context(), i)
		if err != nil {
			return // client went away (or the job retained nothing)
		}
		if emitJSON {
			if err := campaign.StreamPointJSON(w, &pr, includeWall); err != nil {
				return
			}
		} else {
			if err := campaign.StreamPointCSV(csvw, &pr, includeWall); err != nil {
				return
			}
		}
		flush()
	}
	if emitJSON {
		// All points settled, so Results is immediate now.
		if res, _, done := job.Results(); done && res != nil {
			campaign.StreamAggregateJSON(w, res)
		} else {
			campaign.WriteJSON(w, map[string]any{"status": job.Status()})
		}
	} else if csvw != nil {
		csvw.Flush()
	}
	flush()
}
