// Command socbench regenerates the paper's §IV-C case study: the
// heterogeneous many-core SoC model (control core + bus + memory + DMA +
// accelerator pipelines + stream NoC) run twice — once with
// sync-on-every-access FIFOs, once with Smart FIFOs — at identical timing
// accuracy, reporting the wall-time gain. The paper measured 38.0 s →
// 21.9 s, a 42.3% gain; the claim to check here is a substantial gain at
// zero timing difference ("dates equal: true").
//
// With -json the results are emitted as a single JSON document, so perf
// trajectories can be recorded across PRs (BENCH_*.json).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/sim"
	"repro/internal/soc"
)

// runJSON is one mode's measurement in the -json document.
type runJSON struct {
	Mode        string  `json:"mode"`
	WallMS      float64 `json:"wall_ms"`
	CtxSwitches uint64  `json:"ctx_switches"`
	SimEndNS    int64   `json:"sim_end_ns"`
}

// reportJSON is the -json document.
type reportJSON struct {
	Pipelines      int     `json:"pipelines"`
	Jobs           int     `json:"jobs"`
	WordsPerJob    int     `json:"words_per_job"`
	FIFODepth      int     `json:"fifo_depth"`
	UseNoC         bool    `json:"use_noc"`
	WithDMA        bool    `json:"with_dma"`
	Sync           runJSON `json:"sync"`
	Smart          runJSON `json:"smart"`
	GainPct        float64 `json:"gain_pct"`
	DatesEqual     bool    `json:"dates_equal"`
	ChecksumsEqual bool    `json:"checksums_equal"`
}

func main() {
	var (
		pipelines = flag.Int("pipelines", 8, "accelerator pipelines")
		jobs      = flag.Int("jobs", 10, "job rounds")
		words     = flag.Int("words", 4096, "words per job")
		depth     = flag.Int("depth", 16, "accelerator FIFO depth")
		useNoC    = flag.Bool("noc", true, "route odd pipelines through the NoC")
		packet    = flag.Int("packet", 16, "NoC packet length (words)")
		quantum   = flag.Int64("quantum-ns", 500, "memory-mapped side quantum (ns)")
		dma       = flag.Bool("dma", true, "include the memory-to-memory DMA pipeline")
		reps      = flag.Int("reps", 1, "repetitions (best wall time kept)")
		jsonOut   = flag.Bool("json", false, "emit a single JSON document")
	)
	flag.Parse()

	cfg := soc.Config{
		Pipelines:    *pipelines,
		Jobs:         *jobs,
		WordsPerJob:  *words,
		FIFODepth:    *depth,
		UseNoC:       *useNoC,
		NoCPacketLen: *packet,
		Quantum:      sim.Time(*quantum) * sim.NS,
		WithDMA:      *dma,
	}

	run := func(m soc.FIFOMode) soc.Result {
		cfg.Mode = m
		r := soc.Run(cfg)
		for i := 1; i < *reps; i++ {
			r2 := soc.Run(cfg)
			if r2.Wall < r.Wall {
				r = r2
			}
		}
		return r
	}

	syncRes := run(soc.SyncFIFOs)
	smart := run(soc.SmartFIFOs)
	gain := 100 * (1 - float64(smart.Wall)/float64(syncRes.Wall))
	datesEqual := fmt.Sprint(smart.JobDates) == fmt.Sprint(syncRes.JobDates)
	sumsEqual := fmt.Sprint(smart.Checksums) == fmt.Sprint(syncRes.Checksums)

	if *jsonOut {
		asJSON := func(r soc.Result) runJSON {
			return runJSON{
				Mode:        r.Mode.String(),
				WallMS:      float64(r.Wall.Microseconds()) / 1000,
				CtxSwitches: r.Stats.ContextSwitches,
				SimEndNS:    int64(r.SimEnd / sim.NS),
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reportJSON{
			Pipelines: *pipelines, Jobs: *jobs, WordsPerJob: *words, FIFODepth: *depth,
			UseNoC: *useNoC, WithDMA: *dma,
			Sync: asJSON(syncRes), Smart: asJSON(smart), GainPct: gain,
			DatesEqual: datesEqual, ChecksumsEqual: sumsEqual,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "socbench: %v\n", err)
			os.Exit(1)
		}
	} else {
		fmt.Printf("Case study SoC: %d pipelines, %d jobs x %d words, FIFO depth %d, NoC %v, DMA %v\n\n",
			*pipelines, *jobs, *words, *depth, *useNoC, *dma)
		for _, r := range []soc.Result{syncRes, smart} {
			fmt.Printf("%-6s  wall %12v  ctx switches %10d  sim end %v\n",
				r.Mode, r.Wall, r.Stats.ContextSwitches, r.SimEnd)
		}
		fmt.Printf("\nwall-time gain: %.1f%%  (paper: 42.3%% on the industrial model)\n", gain)
		fmt.Printf("job completion dates identical: %v\n", datesEqual)
		fmt.Printf("checksums identical:            %v\n", sumsEqual)
		if smart.NoC.PacketsInjected > 0 {
			fmt.Printf("NoC: %d packets, %d flit-hops\n", smart.NoC.PacketsInjected, smart.NoC.FlitsForwarded)
		}
		fmt.Printf("monitor max FIFO levels: %v\n", smart.MaxLevels)
	}
	if !datesEqual || !sumsEqual {
		fmt.Fprintln(os.Stderr, "socbench: ACCURACY VIOLATION: the two builds disagree")
		os.Exit(1)
	}
}
