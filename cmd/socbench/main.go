// Command socbench regenerates the paper's §IV-C case study: the
// heterogeneous many-core SoC model (control core + bus + memory + DMA +
// accelerator pipelines + stream NoC) run twice — once with
// sync-on-every-access FIFOs, once with Smart FIFOs — at identical timing
// accuracy, reporting the wall-time gain. The paper measured 38.0 s →
// 21.9 s, a 42.3% gain; the claim to check here is a substantial gain at
// zero timing difference ("dates equal: true").
//
// With -shards=N it additionally runs the clustered variant of the model
// (soc.RunClustered) on 1 kernel and on N kernels, checks that the job
// dates and checksums are identical, and reports the parallel speedup:
// the conservative multi-kernel execution over Smart-FIFO dates.
//
// Output is human-readable by default, CSV with -csv, or a single JSON
// document with -json, so perf trajectories can be recorded across PRs
// (BENCH_socbench.json).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/campaign"
	"repro/internal/netlist"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/soc"
)

// runJSON is one measurement in the -json document (and one CSV row).
type runJSON struct {
	Mode        string  `json:"mode"`
	WallMS      float64 `json:"wall_ms"`
	CtxSwitches uint64  `json:"ctx_switches"`
	SimEndNS    int64   `json:"sim_end_ns"`
}

// shardedJSON reports the -shards comparison.
type shardedJSON struct {
	Shards      int    `json:"shards"`
	Partitioner string `json:"partitioner"`
	Crossings   int    `json:"crossings"`
	// The placement-cost fields are populated only when the partitioner is
	// "profiled": the hint-based vs measured-traffic cut of the same model.
	CrossingsBefore int     `json:"crossings_before,omitempty"`
	CrossingsAfter  int     `json:"crossings_after,omitempty"`
	CutWeightBefore float64 `json:"cut_weight_before,omitempty"`
	CutWeightAfter  float64 `json:"cut_weight_after,omitempty"`
	Single          runJSON `json:"single"`
	Sharded         runJSON `json:"sharded"`
	// Advances counts coordinator kernel advances in the sharded run —
	// scheduler telemetry (interleaving-dependent under the async
	// coordinator), reported for scale, never compared.
	Advances uint64  `json:"advances"`
	SpeedupX float64 `json:"speedup_x"`
	DatesEqual  bool    `json:"dates_equal"`
}

// reportJSON is the -json document.
type reportJSON struct {
	Pipelines      int          `json:"pipelines"`
	Jobs           int          `json:"jobs"`
	WordsPerJob    int          `json:"words_per_job"`
	FIFODepth      int          `json:"fifo_depth"`
	UseNoC         bool         `json:"use_noc"`
	WithDMA        bool         `json:"with_dma"`
	Sync           runJSON      `json:"sync"`
	Smart          runJSON      `json:"smart"`
	GainPct        float64      `json:"gain_pct"`
	DatesEqual     bool         `json:"dates_equal"`
	ChecksumsEqual bool         `json:"checksums_equal"`
	Sharded        *shardedJSON `json:"sharded,omitempty"`
}

func asJSON(mode string, r soc.Result) runJSON {
	return runJSON{
		Mode:        mode,
		WallMS:      float64(r.Wall.Microseconds()) / 1000,
		CtxSwitches: r.Stats.ContextSwitches,
		SimEndNS:    int64(r.SimEnd / sim.NS),
	}
}

func main() { os.Exit(run()) }

// run does the whole comparison and returns the exit code, so the deferred
// profile teardown happens before the process exits.
func run() int {
	var (
		pipelines   = flag.Int("pipelines", 8, "accelerator pipelines")
		jobs        = flag.Int("jobs", 10, "job rounds")
		words       = flag.Int("words", 4096, "words per job")
		depth       = flag.Int("depth", 16, "accelerator FIFO depth")
		useNoC      = flag.Bool("noc", true, "route odd pipelines through the NoC")
		packet      = flag.Int("packet", 16, "NoC packet length (words)")
		quantum     = flag.Int64("quantum-ns", 500, "memory-mapped side quantum (ns)")
		dma         = flag.Bool("dma", true, "include the memory-to-memory DMA pipeline")
		reps        = flag.Int("reps", 1, "repetitions (best wall time kept)")
		shards      = flag.Int("shards", 0, "also run the clustered model on 1 and N kernels and report the parallel speedup")
		partitioner = flag.String("partitioner", "", "netlist partitioner for the clustered model: single, roundrobin (default), mincut or profiled (two-phase, measured-traffic placement)")
		csvOut      = flag.Bool("csv", false, "emit CSV")
		jsonOut     = flag.Bool("json", false, "emit a single JSON document")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile of the runs to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile after the runs to this file")
		simtrace    = flag.String("simtrace", "", "write the last sharded run's scheduler timeline as Chrome trace JSON to this file (needs -shards > 1)")
	)
	flag.Parse()
	if *simtrace != "" {
		par.SetTraceCapture(4096)
	}
	if _, err := netlist.PartitionerByName(*partitioner); err != nil {
		fmt.Fprintf(os.Stderr, "socbench: %v\n", err)
		return 2
	}
	if *shards > *pipelines {
		fmt.Fprintf(os.Stderr, "socbench: -shards %d exceeds -pipelines %d (a cluster is one colocation unit)\n", *shards, *pipelines)
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "socbench: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "socbench: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "socbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "socbench: %v\n", err)
			}
		}()
	}

	cfg := soc.Config{
		Pipelines:    *pipelines,
		Jobs:         *jobs,
		WordsPerJob:  *words,
		FIFODepth:    *depth,
		UseNoC:       *useNoC,
		NoCPacketLen: *packet,
		Quantum:      sim.Time(*quantum) * sim.NS,
		WithDMA:      *dma,
	}

	best := func(run func() soc.Result) soc.Result {
		r := run()
		for i := 1; i < *reps; i++ {
			if r2 := run(); r2.Wall < r.Wall {
				r = r2
			}
		}
		return r
	}
	run := func(m soc.FIFOMode) soc.Result {
		return best(func() soc.Result {
			c := cfg
			c.Mode = m
			return soc.Run(c)
		})
	}

	syncRes := run(soc.SyncFIFOs)
	smart := run(soc.SmartFIFOs)
	gain := 100 * (1 - float64(smart.Wall)/float64(syncRes.Wall))
	datesEqual := fmt.Sprint(smart.JobDates) == fmt.Sprint(syncRes.JobDates)
	sumsEqual := fmt.Sprint(smart.Checksums) == fmt.Sprint(syncRes.Checksums)

	var shardedRep *shardedJSON
	if *shards > 1 {
		// Clustered variant: NoC/DMA/IRQ knobs do not apply.
		ccfg := cfg
		ccfg.Partitioner = *partitioner
		part, _ := netlist.PartitionerByName(*partitioner)
		single := best(func() soc.Result { return soc.RunClustered(ccfg, 1) })
		multi := best(func() soc.Result { return soc.RunClustered(ccfg, *shards) })
		shardedRep = &shardedJSON{
			Shards:      multi.Shards,
			Partitioner: part.Name(),
			Crossings:   multi.Crossings,
			Single:      asJSON("clustered-1", single),
			Sharded:     asJSON(fmt.Sprintf("clustered-%d", multi.Shards), multi),
			Advances:    multi.Advances,
			SpeedupX:    float64(single.Wall) / float64(multi.Wall),
			DatesEqual: fmt.Sprint(single.JobDates) == fmt.Sprint(multi.JobDates) &&
				fmt.Sprint(single.Checksums) == fmt.Sprint(multi.Checksums),
		}
		if pc := multi.Placement; pc != nil {
			shardedRep.CrossingsBefore, shardedRep.CrossingsAfter = pc.CrossingsBefore, pc.CrossingsAfter
			shardedRep.CutWeightBefore, shardedRep.CutWeightAfter = pc.CutWeightBefore, pc.CutWeightAfter
		}
	}

	switch {
	case *jsonOut:
		if err := campaign.WriteJSON(os.Stdout, reportJSON{
			Pipelines: *pipelines, Jobs: *jobs, WordsPerJob: *words, FIFODepth: *depth,
			UseNoC: *useNoC, WithDMA: *dma,
			Sync: asJSON("sync", syncRes), Smart: asJSON("smart", smart), GainPct: gain,
			DatesEqual: datesEqual, ChecksumsEqual: sumsEqual,
			Sharded: shardedRep,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "socbench: %v\n", err)
			return 1
		}
	case *csvOut:
		c := campaign.NewCSV(os.Stdout, "mode", "wall_ms", "ctx_switches", "sim_end_ns", "crossings",
			"crossings_before", "crossings_after", "cut_weight_before", "cut_weight_after")
		type csvRow struct {
			r         runJSON
			crossings int
			placed    bool
		}
		rows := []csvRow{{asJSON("sync", syncRes), 0, false}, {asJSON("smart", smart), 0, false}}
		if shardedRep != nil {
			rows = append(rows, csvRow{shardedRep.Single, 0, false}, csvRow{shardedRep.Sharded, shardedRep.Crossings, true})
		}
		for _, cr := range rows {
			var cb, ca int
			var wb, wa float64
			if cr.placed {
				cb, ca = shardedRep.CrossingsBefore, shardedRep.CrossingsAfter
				wb, wa = shardedRep.CutWeightBefore, shardedRep.CutWeightAfter
			}
			c.Row(cr.r.Mode, cr.r.WallMS, cr.r.CtxSwitches, cr.r.SimEndNS, cr.crossings, cb, ca, wb, wa)
		}
		if err := c.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "socbench: %v\n", err)
			return 1
		}
	default:
		fmt.Printf("Case study SoC: %d pipelines, %d jobs x %d words, FIFO depth %d, NoC %v, DMA %v\n\n",
			*pipelines, *jobs, *words, *depth, *useNoC, *dma)
		for _, r := range []soc.Result{syncRes, smart} {
			fmt.Printf("%-6s  wall %12v  ctx switches %10d  sim end %v\n",
				r.Mode, r.Wall, r.Stats.ContextSwitches, r.SimEnd)
		}
		fmt.Printf("\nwall-time gain: %.1f%%  (paper: 42.3%% on the industrial model)\n", gain)
		fmt.Printf("job completion dates identical: %v\n", datesEqual)
		fmt.Printf("checksums identical:            %v\n", sumsEqual)
		if smart.NoC.PacketsInjected > 0 {
			fmt.Printf("NoC: %d packets, %d flit-hops\n", smart.NoC.PacketsInjected, smart.NoC.FlitsForwarded)
		}
		fmt.Printf("monitor max FIFO levels: %v\n", smart.MaxLevels)
		if shardedRep != nil {
			fmt.Printf("\nClustered model, 1 kernel vs %d kernels (%s partitioner, %d bridge crossings, %d kernel advances):\n",
				shardedRep.Shards, shardedRep.Partitioner, shardedRep.Crossings, shardedRep.Advances)
			fmt.Printf("  1 kernel:  %8.3f ms\n", shardedRep.Single.WallMS)
			fmt.Printf("  %d kernels: %8.3f ms\n", shardedRep.Shards, shardedRep.Sharded.WallMS)
			fmt.Printf("  speedup: %.2fx   dates and checksums identical: %v\n",
				shardedRep.SpeedupX, shardedRep.DatesEqual)
			if shardedRep.CutWeightBefore != 0 || shardedRep.CutWeightAfter != 0 {
				fmt.Printf("  profiled placement: crossings %d -> %d, cut weight %.0f -> %.0f words\n",
					shardedRep.CrossingsBefore, shardedRep.CrossingsAfter,
					shardedRep.CutWeightBefore, shardedRep.CutWeightAfter)
			}
		}
	}
	if !datesEqual || !sumsEqual || (shardedRep != nil && !shardedRep.DatesEqual) {
		fmt.Fprintln(os.Stderr, "socbench: ACCURACY VIOLATION: the two builds disagree")
		return 1
	}
	if *simtrace != "" {
		if err := dumpTrace(*simtrace); err != nil {
			fmt.Fprintf(os.Stderr, "socbench: simtrace: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "socbench: scheduler timeline written to %s (open in chrome://tracing or ui.perfetto.dev)\n", *simtrace)
	}
	return 0
}

// dumpTrace writes the most recent captured scheduler timeline to path.
func dumpTrace(path string) error {
	tl := par.LastTrace()
	if tl == nil {
		return fmt.Errorf("no timeline captured (multi-shard run required)")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tl.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
