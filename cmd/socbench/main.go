// Command socbench regenerates the paper's §IV-C case study: the
// heterogeneous many-core SoC model (control core + bus + memory + DMA +
// accelerator pipelines + stream NoC) run twice — once with
// sync-on-every-access FIFOs, once with Smart FIFOs — at identical timing
// accuracy, reporting the wall-time gain. The paper measured 38.0 s →
// 21.9 s, a 42.3% gain; the claim to check here is a substantial gain at
// zero timing difference ("dates equal: true").
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/sim"
	"repro/internal/soc"
)

func main() {
	var (
		pipelines = flag.Int("pipelines", 8, "accelerator pipelines")
		jobs      = flag.Int("jobs", 10, "job rounds")
		words     = flag.Int("words", 4096, "words per job")
		depth     = flag.Int("depth", 16, "accelerator FIFO depth")
		useNoC    = flag.Bool("noc", true, "route odd pipelines through the NoC")
		packet    = flag.Int("packet", 16, "NoC packet length (words)")
		quantum   = flag.Int64("quantum-ns", 500, "memory-mapped side quantum (ns)")
		dma       = flag.Bool("dma", true, "include the memory-to-memory DMA pipeline")
		reps      = flag.Int("reps", 1, "repetitions (best wall time kept)")
	)
	flag.Parse()

	cfg := soc.Config{
		Pipelines:    *pipelines,
		Jobs:         *jobs,
		WordsPerJob:  *words,
		FIFODepth:    *depth,
		UseNoC:       *useNoC,
		NoCPacketLen: *packet,
		Quantum:      sim.Time(*quantum) * sim.NS,
		WithDMA:      *dma,
	}

	run := func(m soc.FIFOMode) soc.Result {
		cfg.Mode = m
		r := soc.Run(cfg)
		for i := 1; i < *reps; i++ {
			r2 := soc.Run(cfg)
			if r2.Wall < r.Wall {
				r = r2
			}
		}
		return r
	}

	fmt.Printf("Case study SoC: %d pipelines, %d jobs x %d words, FIFO depth %d, NoC %v, DMA %v\n\n",
		*pipelines, *jobs, *words, *depth, *useNoC, *dma)
	sync := run(soc.SyncFIFOs)
	smart := run(soc.SmartFIFOs)
	for _, r := range []soc.Result{sync, smart} {
		fmt.Printf("%-6s  wall %12v  ctx switches %10d  sim end %v\n",
			r.Mode, r.Wall, r.Stats.ContextSwitches, r.SimEnd)
	}
	gain := 100 * (1 - float64(smart.Wall)/float64(sync.Wall))
	fmt.Printf("\nwall-time gain: %.1f%%  (paper: 42.3%% on the industrial model)\n", gain)

	datesEqual := fmt.Sprint(smart.JobDates) == fmt.Sprint(sync.JobDates)
	sumsEqual := fmt.Sprint(smart.Checksums) == fmt.Sprint(sync.Checksums)
	fmt.Printf("job completion dates identical: %v\n", datesEqual)
	fmt.Printf("checksums identical:            %v\n", sumsEqual)
	if smart.NoC.PacketsInjected > 0 {
		fmt.Printf("NoC: %d packets, %d flit-hops\n", smart.NoC.PacketsInjected, smart.NoC.FlitsForwarded)
	}
	fmt.Printf("monitor max FIFO levels: %v\n", smart.MaxLevels)
	if !datesEqual || !sumsEqual {
		fmt.Fprintln(os.Stderr, "socbench: ACCURACY VIOLATION: the two builds disagree")
		os.Exit(1)
	}
}
