// Package repro reproduces "Fast and Accurate TLM Simulations using
// Temporal Decoupling for FIFO-based Communications" (Helmstetter, Cornet,
// Galilée, Moy, Vivet — DATE 2013) in Go.
//
// The repository contains a SystemC-like discrete-event kernel
// (internal/sim), temporal-decoupling utilities (internal/td), regular and
// sync-wrapped FIFOs (internal/fifo), the paper's Smart FIFO
// (internal/core), the §IV-A trace-equivalence validation framework
// (internal/trace), the §IV-B three-module benchmark (internal/pipeline,
// internal/workload) and the §IV-C heterogeneous SoC case study
// (internal/bus, internal/noc, internal/accel, internal/soc).
//
// See README.md for a guided tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results. The benchmarks in
// bench_test.go regenerate every figure of the evaluation section.
//
// # Performance notes
//
// The kernel hot paths are allocation-free in steady state: each Process
// and Event embeds its one reusable timed-queue entry, the timed queue is
// a concrete 4-ary min-heap with in-place reschedule (internal/sim/timedq.go),
// and the delta/waiter queues recycle their backing arrays. The Smart
// FIFO's external NotEmpty/NotFull notifications are subscriber-aware and
// computed lazily: while no waiter, static method or dynamic trigger is
// attached, a state change merely records the authoritative
// insertion/freeing date (sim.Event.NotifyAtReplace); the recorded date is
// scheduled as a real notification when the first subscriber attaches
// (keeping its original same-date firing order), and expires at the same
// boundary where an unobserved real notification would have been lost.
// Subscribers observe exactly the wakeups they always did; the one
// deliberate divergence is that unobservable notifications no longer keep
// the kernel alive, so Run quiesces without advancing Now to their dates.
// Allocation regressions are pinned by testing.AllocsPerRun tests in
// internal/sim and internal/core.
package repro
