// Package repro reproduces "Fast and Accurate TLM Simulations using
// Temporal Decoupling for FIFO-based Communications" (Helmstetter, Cornet,
// Galilée, Moy, Vivet — DATE 2013) in Go.
//
// The repository contains a SystemC-like discrete-event kernel
// (internal/sim), temporal-decoupling utilities (internal/td), regular and
// sync-wrapped FIFOs (internal/fifo), the paper's Smart FIFO
// (internal/core), the §IV-A trace-equivalence validation framework
// (internal/trace), the §IV-B three-module benchmark (internal/pipeline,
// internal/workload) and the §IV-C heterogeneous SoC case study
// (internal/bus, internal/noc, internal/accel, internal/soc).
//
// See README.md for a guided tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results. The benchmarks in
// bench_test.go regenerate every figure of the evaluation section.
package repro
