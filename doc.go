// Package repro reproduces "Fast and Accurate TLM Simulations using
// Temporal Decoupling for FIFO-based Communications" (Helmstetter, Cornet,
// Galilée, Moy, Vivet — DATE 2013) in Go.
//
// The repository contains a SystemC-like discrete-event kernel
// (internal/sim), temporal-decoupling utilities (internal/td), regular and
// sync-wrapped FIFOs (internal/fifo), the paper's Smart FIFO
// (internal/core), the §IV-A trace-equivalence validation framework
// (internal/trace), the §IV-B three-module benchmark (internal/pipeline,
// internal/workload) and the §IV-C heterogeneous SoC case study
// (internal/bus, internal/noc, internal/accel, internal/soc).
//
// See README.md for a guided tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results. The benchmarks in
// bench_test.go regenerate every figure of the evaluation section.
//
// # Performance notes
//
// The kernel hot paths are allocation-free in steady state: each Process
// and Event embeds its one reusable timed-queue entry, the timed queue is
// a concrete 4-ary min-heap with in-place reschedule (internal/sim/timedq.go),
// and the delta/waiter queues recycle their backing arrays. The Smart
// FIFO's external NotEmpty/NotFull notifications are subscriber-aware and
// computed lazily: while no waiter, static method or dynamic trigger is
// attached, a state change merely records the authoritative
// insertion/freeing date (sim.Event.NotifyAtReplace); the recorded date is
// scheduled as a real notification when the first subscriber attaches
// (keeping its original same-date firing order), and expires at the same
// boundary where an unobserved real notification would have been lost.
// Subscribers observe exactly the wakeups they always did; the one
// deliberate divergence is that unobservable notifications no longer keep
// the kernel alive, so Run quiesces without advancing Now to their dates.
// Allocation regressions are pinned by testing.AllocsPerRun tests in
// internal/sim and internal/core.
//
// # Bulk transfers (burst contract)
//
// Burst words advance a side's local clock by a fixed period, so their
// insertion/freeing dates form arithmetic runs. The burst APIs
// (WriteBurst, ReadBurst, TryWriteBurst, TryReadBurst on core.SmartFIFO,
// the core.ShardedFIFO endpoints and fifo.FIFO; generic dispatch helpers
// in package fifo) exploit that with run-based fast paths: a burst splits
// into runs bounded by the next internal full/empty boundary, payload
// moves with copy, dates are annotated in one vector pass, and event work
// collapses to at most one notification per event per run. The contract is
// the scalar loop — word 0 at the caller's local date, Inc(per) between
// consecutive words, blocking/Try pre-checks per word — and the bulk
// implementation is bit-identical to it: values, dates, Stats counters,
// context switches, blocking behavior and every subscriber-visible
// notification are unchanged (property tests in internal/core/burst_test.go
// pin bulk against the literal scalar oracle; trace-equivalence tests pin
// chunked models across modes and shard counts). The only observable
// difference is the diagnostic sim.Stats.Notifications counter, which
// counts fewer calls because redundant per-word notification probes are
// collapsed. The fast paths are zero-allocation in steady state and
// ≥ 5x cheaper per word than the scalar loop (BenchmarkWriteBurst,
// BenchmarkReadBurst); accelerator Generator/Sink streams, DMA chunking,
// NoC packetization and the chunked pipeline/kpn workloads ride them.
//
// # Sharded parallel execution
//
// A simulation can be partitioned into several sim.Kernel shards run in
// parallel by a conservative coordinator (internal/par) over cross-shard
// Smart-FIFO bridges (core.ShardedFIFO). The contract:
//
//   - every cross-shard interaction is a bridge: a bounded FIFO whose
//     writer and reader endpoints live on different kernels and carry the
//     paper's insertion/freeing dates across the boundary with the same
//     two-test IsEmpty/IsFull semantics;
//   - lookahead is the §III access discipline itself: write dates on a
//     side never decrease, so each bridge's frontier — last insertion
//     date, writer's local clock, next free cell's freeing date, or the
//     reader's own read floor when the writer is credit-blocked — bounds
//     everything it can still deliver. No null messages, no quantum;
//   - scheduling is frontier-driven and asynchronous: a long-lived
//     worker per shard exchanges staged data, credits and frontier
//     bounds over its own bridges, re-derives its horizon (inbound
//     frontiers strictly, outbound write frontiers inclusively) and
//     keeps stepping while an event lies inside it, poking only the
//     neighbours its publications can unblock — coordination cost
//     follows a shard's bridge degree, not the shard count;
//   - only when every worker is parked do they rendezvous: the
//     coordinator recomputes every horizon with full knowledge, and if
//     nothing is runnable even then it falls back to the globally
//     earliest event date, which is always safe to process. Lookahead
//     runs out roughly every FIFO-depth words per bridge, so deeper
//     FIFOs mean fewer rendezvous. SetBarrier(true) forces the legacy
//     lockstep barrier scheduler; both produce identical dates
//     (cmd/parlat re-checks this while measuring the latency gap).
//
// Blocking Read/Write through a bridge produce local dates identical to a
// single-kernel SmartFIFO — 1-shard and N-shard runs of the same model
// are trace-equivalent (internal/trace), which internal/pipeline
// (Config.Shards) and the clustered SoC variant (soc.RunClustered) pin in
// their tests. Non-blocking and monitor views observe delivered state
// only, exact up to the inbound frontier: fill-level samples of in-flight
// streams are schedule-dependent, as they are on real silicon.
//
// Two horizon rules keep that exactness under arbitrary partitionings:
// the inbound frontier bounds a shard STRICTLY (a non-blocking reader
// polling at date D already holds every word inserted at or before D),
// and each outbound bridge's WriteFrontier caps the shard's kernel clock
// at the date a credit-blocked writer must resume at — a co-located
// process may not drag the clock past it, because a parked writer's
// restored decoupled date cannot lie in the kernel's past.
//
// # Netlist: declarative component graphs
//
// internal/netlist is the wiring layer above the kernels: models declare
// Modules (a thread body or a structural elaboration hook plus typed
// in/out Ports) and Channels (depth, burst hint, optional traffic
// weight), and Graph.Build elaborates the graph onto N kernels. The
// bridge auto-insertion rule: a channel whose writer and reader modules
// share a shard elaborates as a plain core.SmartFIFO (or a regular/sync
// FIFO for reference builds); a channel cut by the partitioning becomes
// a core.ShardedFIFO bridge registered with the coordinator. Exactly one
// module writes and one module reads each channel (the Kahn discipline
// the dates rely on); modules that must share a kernel — a bus and the
// cores behind it, a NoC mesh and its network interfaces — declare a
// colocation group, which the pluggable partitioners (single,
// roundrobin, traffic-weighted greedy mincut) place as one unit.
// Because bridges are date-exact, the partitioning never changes dated
// results: every partitioner at every shard count reproduces the
// single-kernel dates, pinned over generated chain/ring/tree/mesh
// topologies by internal/netlist's trace-equivalence suite. All five
// workload models build through the netlist, and the "netlist" scenario
// model exposes the topology generators (kind, size, shards,
// partitioner) as ordinary sweepable spec parameters.
//
// # Scenario and campaign layers
//
// Above the kernels sits declarative design-space exploration — the unit
// of work becomes many independent simulations, not one. internal/scenario
// defines JSON-decodable Specs (model name + parameters + a Matrix of
// sweep axes), expands them into concrete points by cartesian product,
// hashes each point canonically for dedup, and keeps the registry the
// workload packages (internal/pipeline, internal/soc, internal/kpn,
// internal/noc, internal/netlist) self-register their models in; all
// payload and rate
// randomness derives from the spec seed through scenario.Rand, so a spec
// is a complete, reproducible description of its traces. internal/campaign
// executes expanded points across a GOMAXPROCS worker pool with
// hash-keyed caching, runs sampled trace-equivalence spot checks
// (decoupled vs reference via trace.Diff), and emits results in
// deterministic expansion order: the default JSON/CSV documents carry no
// wall-clock fields and are byte-identical across worker counts. cmd/simd
// serves the engine over HTTP (submit/status/results, graceful shutdown);
// cmd/campaign drives it from a spec file (the CI determinism smoke pins
// a golden results document).
//
// # Metrics and scheduler timelines
//
// internal/metrics is a dependency-free observability layer: a registry
// of atomically updated counters, gauges and fixed-bucket histograms
// with a Prometheus text-format (0.0.4) encoder. Updates are
// zero-allocation and safe from shard workers. Each subsystem publishes
// into a registry handed over at startup — sim.EnableMetrics (kernels
// fold Stats deltas in at interrupt-poll safe points, never per
// dispatch), core.EnableBridgeMetrics (bridge words/credits counted per
// flush, never per word; ShardedFIFO.Traffic is the always-on
// per-channel raw feed), par.EnableMetrics (parks, graded wakes,
// rendezvous, exchange-latency histogram) and campaign.NewMetrics
// (point lifecycle, cache hits, active workers/campaigns). Everything
// no-ops at a nil check when disabled; AllocsPerRun regressions pin the
// hot paths at 0 allocs both ways. The async coordinator can also
// record a scheduler timeline — per-worker ring buffers of
// park/wake/exchange/rendezvous/step records — dumped as Chrome
// trace_event JSON for chrome://tracing or ui.perfetto.dev via the
// -simtrace flags on fifobench/socbench/parlat or simd's /debug/trace
// endpoint; simd serves the registry at GET /metrics and per-campaign
// live counters at /campaigns/{id}/stats.
package repro
