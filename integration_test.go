package repro

// Capstone integration test: every subsystem in one model. An ISS control
// core (firmware from the assembler) programs a DMA engine and two
// accelerator chains through the bus; one chain crosses the NoC through
// packetizing network interfaces; completion is signalled through the
// interrupt controller; the control firmware sleeps on WFI. The whole
// model runs with Smart FIFOs and with sync-on-access FIFOs and must
// produce identical checksums and identical accelerator job dates — the
// paper's accuracy claim over the complete stack.

import (
	"fmt"
	"testing"

	"repro/internal/accel"
	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/fifo"
	"repro/internal/noc"
	"repro/internal/sim"
)

const integrationFirmware = `
	; bases: gen0 0x200, sink0 0x210, gen1 0x220, sink1 0x230, irq 0x400
	ldi  r1, 0x200
	ldi  r2, 0x210
	ldi  r3, 0x220
	ldi  r4, 0x230
	ldi  r7, 0x400
	ldi  r5, 1
	ldi  r6, 3        ; enable lines 0 and 1
	st   r6, 1(r7)
	ldi  r8, 64       ; words per job (multiple of the NoC packet)
	; start both chains, consumers first
	st   r8, 1(r2)
	st   r5, 0(r2)
	st   r8, 1(r4)
	st   r5, 0(r4)
	st   r8, 1(r1)
	st   r5, 0(r1)
	st   r8, 1(r3)
	st   r5, 0(r3)
	ldi  r9, 0        ; accumulated done mask
wait:
	wfi
	ld   r10, 0(r7)   ; pending
	beq  r10, r0, wait
	st   r10, 0(r7)   ; ack
	or   r9, r9, r10
	ldi  r11, 3
	bne  r9, r11, wait
	; read both jobs-done counters into r12/r13
	ld   r12, 3(r2)
	ld   r13, 3(r4)
	halt
`

type integrationResult struct {
	sums     [2]uint64
	dates    string
	switches uint64
	halted   bool
	r12, r13 uint32
}

func runIntegration(t *testing.T, smart bool) integrationResult {
	t.Helper()
	k := sim.NewKernel("integration")
	b := bus.NewBus(k, "bus", sim.NS)
	irq := bus.NewIRQController(k, "irq")
	newCh := func(name string) fifo.Channel[uint32] {
		if smart {
			return core.NewSmart[uint32](k, name, 8)
		}
		return fifo.NewSync[uint32](k, name, 8)
	}

	// Chain 0: gen → sink directly.
	c0 := newCh("c0")
	gen0 := accel.New(k, "gen0", accel.Config{Kind: accel.Generator, Out: c0, WordLat: 3 * sim.NS, Seed: 21})
	sink0 := accel.New(k, "sink0", accel.Config{Kind: accel.Sink, In: c0, WordLat: 4 * sim.NS, IRQ: irq, IRQLine: 0})

	// Chain 1: gen → NoC (2x1 mesh) → sink.
	mesh := noc.NewMesh(k, "noc", noc.Config{Width: 2, Height: 1, Cycle: sim.NS, FIFODepth: 4})
	toNoC := newCh("toNoC")
	fromNoC := newCh("fromNoC")
	mesh.AttachNI("ni.in", 0, 0, toNoC, nil, noc.NIConfig{PacketLen: 8, Cycle: sim.NS, Dst: 1})
	mesh.AttachNI("ni.out", 1, 0, nil, fromNoC, noc.NIConfig{PacketLen: 8, Cycle: sim.NS})
	gen1 := accel.New(k, "gen1", accel.Config{Kind: accel.Generator, Out: toNoC, WordLat: 2 * sim.NS, Seed: 22})
	sink1 := accel.New(k, "sink1", accel.Config{Kind: accel.Sink, In: fromNoC, WordLat: 3 * sim.NS, IRQ: irq, IRQLine: 1})

	b.Map("gen0", 0x200, accel.NumRegs, gen0.Regs())
	b.Map("sink0", 0x210, accel.NumRegs, sink0.Regs())
	b.Map("gen1", 0x220, accel.NumRegs, gen1.Regs())
	b.Map("sink1", 0x230, accel.NumRegs, sink1.Regs())
	b.Map("irq", 0x400, bus.IRQNumRegs, irq)

	c := cpu.New(k, "cpu0", cpu.Config{
		Program: cpu.MustAssemble(integrationFirmware),
		Bus:     b,
		CPI:     2 * sim.NS,
		Quantum: 300 * sim.NS,
		IRQ:     irq,
	})

	k.Run(sim.RunForever)
	res := integrationResult{
		sums:     [2]uint64{sink0.Checksum(), sink1.Checksum()},
		dates:    fmt.Sprint(sink0.JobDates(), sink1.JobDates()),
		switches: k.Stats().ContextSwitches,
		halted:   c.Halted(),
		r12:      c.Reg(12),
		r13:      c.Reg(13),
	}
	k.Shutdown()
	return res
}

func TestIntegrationFullStack(t *testing.T) {
	smart := runIntegration(t, true)
	sync := runIntegration(t, false)
	if !smart.halted || !sync.halted {
		t.Fatalf("firmware did not halt: smart=%v sync=%v", smart.halted, sync.halted)
	}
	if smart.r12 != 1 || smart.r13 != 1 {
		t.Errorf("firmware read jobs done %d/%d, want 1/1", smart.r12, smart.r13)
	}
	if smart.sums != sync.sums {
		t.Errorf("checksums differ: smart %x sync %x", smart.sums, sync.sums)
	}
	if smart.sums[0] == 0 || smart.sums[1] == 0 {
		t.Error("zero checksum: a chain moved no data")
	}
	if smart.dates != sync.dates {
		t.Errorf("job dates differ:\nsmart %s\nsync  %s", smart.dates, sync.dates)
	}
	if smart.switches >= sync.switches {
		t.Errorf("smart switches (%d) not below sync (%d)", smart.switches, sync.switches)
	}
}

func TestIntegrationDeterministic(t *testing.T) {
	a := runIntegration(t, true)
	b := runIntegration(t, true)
	if a.dates != b.dates || a.switches != b.switches || a.sums != b.sums {
		t.Error("two identical integration runs differ")
	}
}
