// SoC: the paper's §IV-C case study end to end — a heterogeneous SoC with
// a control core on a memory-mapped bus, DMA, accelerator pipelines wired
// by FIFOs, and a stream NoC with packetizing network interfaces. The
// model runs twice (sync-on-access FIFOs vs Smart FIFOs) and demonstrates
// the paper's result: a large simulation speedup at *identical* timing.
package main

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/soc"
)

func main() {
	cfg := soc.Config{
		Pipelines:    4,
		Jobs:         5,
		WordsPerJob:  2048,
		FIFODepth:    16,
		UseNoC:       true,
		NoCPacketLen: 16,
		Quantum:      500 * sim.NS,
		WithDMA:      true,
	}
	fmt.Printf("SoC: %d accelerator pipelines (odd ones via the NoC), %d jobs x %d words, DMA on\n\n",
		cfg.Pipelines, cfg.Jobs, cfg.WordsPerJob)

	cfg.Mode = soc.SyncFIFOs
	sync := soc.Run(cfg)
	cfg.Mode = soc.SmartFIFOs
	smart := soc.Run(cfg)

	for _, r := range []soc.Result{sync, smart} {
		fmt.Printf("%-6s  wall %12v  ctx switches %9d  bus accesses %6d\n",
			r.Mode, r.Wall, r.Stats.ContextSwitches, r.BusAccesses)
	}
	fmt.Printf("\nwall-time gain: %.1f%%\n", 100*(1-float64(smart.Wall)/float64(sync.Wall)))
	fmt.Printf("job dates identical: %v\n", fmt.Sprint(smart.JobDates) == fmt.Sprint(sync.JobDates))
	fmt.Printf("checksums identical: %v\n", fmt.Sprint(smart.Checksums) == fmt.Sprint(sync.Checksums))
	fmt.Printf("NoC traffic: %d packets, %d flit-hops\n", smart.NoC.PacketsInjected, smart.NoC.FlitsForwarded)

	fmt.Println("\nper-pipeline job completion dates (Smart FIFO build):")
	for i, dates := range smart.JobDates {
		fmt.Printf("  pipeline %d: %v\n", i, dates)
	}
	fmt.Printf("\nmonitor-observed max sink-input FIFO levels: %v\n", smart.MaxLevels)
}
