// Pipeline: a small interactive version of the paper's §IV-B benchmark —
// source → transmitter → sink over two FIFOs — swept over FIFO depths in
// all three modes, printing a miniature Fig. 5 plus the proof that TDfull
// keeps the exact TDless timing.
package main

import (
	"fmt"

	"repro/internal/pipeline"
	"repro/internal/sim"
)

func main() {
	const blocks, words = 50, 1000
	fmt.Printf("mini Fig. 5 — %d blocks x %d words\n\n", blocks, words)
	fmt.Printf("%6s  %-8s  %10s  %12s  %10s\n", "depth", "mode", "wall", "switches", "timing err")
	for _, depth := range []int{1, 2, 4, 16, 64} {
		var ref pipeline.Result
		for _, m := range []pipeline.Mode{pipeline.Untimed, pipeline.TDless, pipeline.TDfull} {
			r := pipeline.Run(pipeline.Config{
				Mode: m, Depth: depth, Blocks: blocks, WordsPerBlock: words,
			})
			errStr := "-"
			if m == pipeline.TDless {
				ref = r
			}
			if m == pipeline.TDfull {
				errStr = pipeline.MaxTimingError(ref, r).String()
			}
			fmt.Printf("%6d  %-8s  %10v  %12d  %10s\n", depth, m, r.Wall.Round(10*1000), r.Stats.ContextSwitches, errStr)
		}
	}

	// The quantum alternative: fast, but pays with timing error.
	fmt.Printf("\nquantum-keeper ablation at depth 4:\n")
	ref := pipeline.Run(pipeline.Config{Mode: pipeline.TDless, Depth: 4, Blocks: blocks, WordsPerBlock: words})
	for _, q := range []sim.Time{0, 100 * sim.NS, 10 * sim.US} {
		r := pipeline.Run(pipeline.Config{
			Mode: pipeline.Quantum, QuantumValue: q, Depth: 4, Blocks: blocks, WordsPerBlock: words,
		})
		fmt.Printf("  quantum %8v: wall %10v  max timing error %v\n",
			q, r.Wall.Round(10*1000), pipeline.MaxTimingError(ref, r))
	}
	smart := pipeline.Run(pipeline.Config{Mode: pipeline.TDfull, Depth: 4, Blocks: blocks, WordsPerBlock: words})
	fmt.Printf("  Smart FIFO      : wall %10v  max timing error %v (no quantum to tune)\n",
		smart.Wall.Round(10*1000), pipeline.MaxTimingError(ref, smart))
}
