// Videopipe: the paper's motivating workload — "the most intensive
// computations, such as video decoding, are done by application-specific
// hardware accelerators" — as a Kahn process network: a bitstream source
// feeding entropy decode → inverse transform → deblocking filter →
// display, with per-stage word rates and frame-boundary reporting.
//
// The network runs twice through kpn.Verify (regular FIFOs without
// decoupling vs Smart FIFOs with decoupling) to show identical dated
// frame traces, then once more decoupled to report speed.
package main

import (
	"fmt"
	"time"

	"repro/internal/kpn"
	"repro/internal/sim"
	"repro/internal/workload"
)

const (
	frames      = 24
	macroblocks = 99 // per frame (QCIF-ish)
	wordsPerMB  = 6
)

// build assembles the decoder network; it is mode-independent, which is
// what lets kpn.Verify compare the two implementations.
func build(net *kpn.Network) {
	bits := kpn.Channel[uint32](net, "bitstream", 32)
	syms := kpn.Channel[uint32](net, "symbols", 16)
	pix := kpn.Channel[uint32](net, "pixels", 16)
	out := kpn.Channel[uint32](net, "display", 64)
	total := frames * macroblocks * wordsPerMB

	net.Actor("source", func(a *kpn.Actor) {
		for i := 0; i < total; i++ {
			bits.Write(workload.WordAt(7, i))
			a.Delay(4 * sim.NS) // DMA from memory
		}
	})
	net.Actor("entropy", func(a *kpn.Actor) {
		for i := 0; i < total; i++ {
			w := bits.Read()
			// Data-dependent decode time: 2..9 ns.
			a.Delay(sim.Time(2+w%8) * sim.NS)
			syms.Write(w ^ 0x5a5a5a5a)
		}
	})
	net.Actor("idct", func(a *kpn.Actor) {
		for i := 0; i < total; i++ {
			w := syms.Read()
			a.Delay(5 * sim.NS)
			pix.Write(w>>1 + 3)
		}
	})
	net.Actor("deblock", func(a *kpn.Actor) {
		var prev uint32
		for i := 0; i < total; i++ {
			w := pix.Read()
			a.Delay(3 * sim.NS)
			out.Write((w + prev) / 2)
			prev = w
		}
	})
	net.Actor("display", func(a *kpn.Actor) {
		sum := uint64(0)
		for f := 0; f < frames; f++ {
			for i := 0; i < macroblocks*wordsPerMB; i++ {
				sum = workload.Checksum(sum, out.Read())
			}
			a.Delay(2 * sim.NS)
			a.Logf("frame %d done, checksum %x", f, sum)
		}
	})
}

func main() {
	fmt.Printf("video decoder KPN: %d frames x %d macroblocks x %d words\n\n",
		frames, macroblocks, wordsPerMB)

	if d := kpn.Verify("videopipe", build); d != "" {
		fmt.Println("ACCURACY VIOLATION:", d)
		return
	}
	fmt.Println("verify: decoupled Smart FIFO trace == non-decoupled reference trace")

	run := func(decoupled bool) (time.Duration, uint64, sim.Time) {
		net := kpn.New("videopipe", decoupled)
		build(net)
		start := time.Now()
		if err := net.Run(); err != nil {
			panic(err)
		}
		wall := time.Since(start)
		var last sim.Time
		for _, e := range net.Trace().Sorted() {
			last = e.Date
		}
		return wall, uint64(net.K.Stats().ContextSwitches), last
	}
	refWall, refSw, refEnd := run(false)
	tdWall, tdSw, tdEnd := run(true)
	fmt.Printf("\nreference: wall %10v  ctx switches %8d  last frame at %v\n", refWall, refSw, refEnd)
	fmt.Printf("decoupled: wall %10v  ctx switches %8d  last frame at %v\n", tdWall, tdSw, tdEnd)
	fmt.Printf("speedup: %.1fx at identical frame dates\n", float64(refWall)/float64(tdWall))
}
