// Monitor: the rationale for the Smart FIFO's third interface (§III-C).
// Embedded software polls a FIFO's fill level for debug and dynamic
// performance tuning. The demo runs a producer/consumer pair where the
// consumer's speed is *tuned at run time* by a controller thread that
// watches the fill level through the monitor interface — and shows that
// the level observed through a Smart FIFO with heavily decoupled processes
// matches the level of a regular FIFO in the non-decoupled build, date for
// date.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fifo"
	"repro/internal/sim"
)

// model runs the tuned producer/consumer system and returns the sampled
// (date, level, consumerPeriod) tuples.
func model(smart bool) []string {
	k := sim.NewKernel("monitor")
	var f fifo.Channel[int]
	if smart {
		f = core.NewSmart[int](k, "stream", 32)
	} else {
		f = fifo.New[int](k, "stream", 32)
	}
	delay := func(p *sim.Process, d sim.Time) {
		if smart {
			p.Inc(d)
		} else {
			p.Wait(d)
		}
	}

	const n = 600
	k.Thread("producer", func(p *sim.Process) {
		for i := 0; i < n; i++ {
			f.Write(i)
			// Bursty source: fast for 40 words, then a pause.
			if (i+1)%40 == 0 {
				delay(p, 400*sim.NS)
			} else {
				delay(p, 10*sim.NS)
			}
		}
	})

	// The consumer's period is a "register" the controller tunes.
	consumerPeriod := 20 * sim.NS
	k.Thread("consumer", func(p *sim.Process) {
		for i := 0; i < n; i++ {
			f.Read()
			delay(p, consumerPeriod)
		}
	})

	var samples []string
	k.Thread("controller", func(p *sim.Process) {
		// Embedded software: always synchronized, low polling rate.
		p.Wait(5 * sim.NS)
		for i := 0; i < 40; i++ {
			lvl := f.Size()
			switch {
			case lvl > 24: // congested: speed the consumer up
				consumerPeriod = 10 * sim.NS
			case lvl < 8: // draining: relax it
				consumerPeriod = 20 * sim.NS
			}
			samples = append(samples, fmt.Sprintf("t=%-8v level=%-2d consumer=%v", k.Now(), lvl, consumerPeriod))
			p.Wait(250 * sim.NS)
		}
	})

	k.Run(sim.RunForever)
	k.Shutdown()
	return samples
}

func main() {
	ref := model(false)
	smart := model(true)
	fmt.Println("controller samples (regular FIFO, no decoupling | Smart FIFO, decoupled):")
	same := true
	for i := range ref {
		marker := "  ==  "
		if ref[i] != smart[i] {
			marker = "  !!  "
			same = false
		}
		fmt.Printf("  %s%s%s\n", ref[i], marker, smart[i])
	}
	fmt.Println()
	if same {
		fmt.Println("every monitored level and every tuning decision is identical:")
		fmt.Println("the Smart FIFO's get_size rules reconstruct the real FIFO state")
		fmt.Println("at the controller's date, even with decoupled producer/consumer.")
	} else {
		fmt.Println("MISMATCH: monitor semantics diverged (this should not happen).")
	}
}
