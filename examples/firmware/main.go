// Firmware: the case-study control core as *real software* — a small
// RISC-like ISS executes assembled firmware that programs an accelerator
// pipeline through memory-mapped registers, sleeps on the interrupt
// controller (WFI), reads FIFO fill levels through the monitor interface
// and halts. The whole model runs twice (sync-on-access FIFOs vs Smart
// FIFOs): same firmware trace, same dates, fewer context switches.
package main

import (
	"fmt"
	"time"

	"repro/internal/accel"
	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/fifo"
	"repro/internal/sim"
)

const firmware = `
	; register map:
	;   0x200 generator, 0x210 scale, 0x220 sink, 0x400 irq ctrl
	ldi  r1, 0x200
	ldi  r2, 0x210
	ldi  r3, 0x220
	ldi  r7, 0x400
	ldi  r4, 1
	st   r4, 1(r7)      ; irq: enable line 0 (sink done)
	ldi  r5, 256        ; words per job
	ldi  r8, 4          ; jobs to run
	ldi  r9, 0          ; max observed sink-input level
next_job:
	st   r5, 1(r3)      ; sink.words
	st   r4, 0(r3)      ; sink.start
	st   r5, 1(r2)      ; scale.words
	st   r4, 0(r2)      ; scale.start
	st   r5, 1(r1)      ; gen.words
	st   r4, 0(r1)      ; gen.start
sleep:
	ld   r10, 4(r3)     ; sink.RegInLevel: monitor access
	blt  r10, r9, nomax
	mov  r9, r10
nomax:
	wfi
	ld   r6, 0(r7)      ; irq.pending
	beq  r6, r0, sleep
	st   r6, 0(r7)      ; ack
	addi r8, r8, -1
	bne  r8, r0, next_job
	ld   r11, 3(r3)     ; sink.RegJobsDone
	halt
`

func run(smart bool) (wall time.Duration, switches uint64, c *cpu.CPU, jobDates []sim.Time, maxLevel uint32) {
	k := sim.NewKernel("firmware")
	b := bus.NewBus(k, "bus", sim.NS)
	irq := bus.NewIRQController(k, "irq")

	newCh := func(name string) fifo.Channel[uint32] {
		if smart {
			return core.NewSmart[uint32](k, name, 8)
		}
		return fifo.NewSync[uint32](k, name, 8)
	}
	c1, c2 := newCh("c1"), newCh("c2")
	gen := accel.New(k, "gen", accel.Config{Kind: accel.Generator, Out: c1, WordLat: 3 * sim.NS, Seed: 5})
	sc := accel.New(k, "scale", accel.Config{Kind: accel.Scale, In: c1, Out: c2, WordLat: 2 * sim.NS, Factor: 3})
	sink := accel.New(k, "sink", accel.Config{
		Kind: accel.Sink, In: c2, WordLat: 4 * sim.NS, IRQ: irq, IRQLine: 0,
	})
	b.Map("gen", 0x200, accel.NumRegs, gen.Regs())
	b.Map("scale", 0x210, accel.NumRegs, sc.Regs())
	b.Map("sink", 0x220, accel.NumRegs, sink.Regs())
	b.Map("irq", 0x400, bus.IRQNumRegs, irq)

	c = cpu.New(k, "cpu0", cpu.Config{
		Program: cpu.MustAssemble(firmware),
		Bus:     b,
		CPI:     2 * sim.NS,
		Quantum: 200 * sim.NS,
		IRQ:     irq,
	})

	start := time.Now()
	k.Run(sim.RunForever)
	wall = time.Since(start)
	k.Shutdown()
	return wall, k.Stats().ContextSwitches, c, sink.JobDates(), c.Reg(9)
}

func main() {
	fmt.Println("ISS-controlled pipeline: generator → scale → sink, 4 jobs x 256 words")
	fmt.Println()
	syncWall, syncSw, syncCPU, syncDates, syncLvl := run(false)
	smartWall, smartSw, smartCPU, smartDates, smartLvl := run(true)

	fmt.Printf("sync FIFOs : wall %10v  ctx switches %7d  instructions %6d\n", syncWall, syncSw, syncCPU.Retired())
	fmt.Printf("smart FIFOs: wall %10v  ctx switches %7d  instructions %6d\n", smartWall, smartSw, smartCPU.Retired())
	fmt.Printf("\nfirmware saw jobs done: sync r11=%d, smart r11=%d\n", syncCPU.Reg(11), smartCPU.Reg(11))
	fmt.Printf("max sink-input level observed by firmware: sync %d, smart %d\n", syncLvl, smartLvl)
	fmt.Printf("sink job completion dates identical: %v\n", fmt.Sprint(syncDates) == fmt.Sprint(smartDates))
	fmt.Printf("  dates: %v\n", smartDates)
}
