// Quickstart: the paper's Fig. 1 example — a writer and a reader
// communicating through a bounded FIFO, with timing annotations.
//
// The program runs the model three ways and prints the dated traces:
//
//  1. reference — regular FIFO, wait() per annotation (paper Fig. 2);
//  2. naive decoupling — regular FIFO, inc() with no synchronization: the
//     reader's dates are wrong (paper Fig. 3);
//  3. Smart FIFO — inc() with the paper's channel: no context switch per
//     annotation, and every date matches the reference exactly.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fifo"
	"repro/internal/sim"
	"repro/internal/trace"
)

// run builds the Fig. 1 model. mkFIFO picks the channel; decoupled picks
// inc() vs wait().
func run(title string, decoupled bool, smart bool) *trace.Recorder {
	k := sim.NewKernel(title)
	rec := trace.NewRecorder()

	var f fifo.Channel[int]
	if smart {
		f = core.NewSmart[int](k, "fifo", 4)
	} else {
		f = fifo.New[int](k, "fifo", 4)
	}
	delay := func(p *sim.Process, d sim.Time) {
		if decoupled {
			p.Inc(d)
		} else {
			p.Wait(d)
		}
	}

	k.Thread("writer", func(p *sim.Process) {
		for i := 1; i <= 3; i++ {
			f.Write(i)
			rec.Logf(p, "wrote %d", i)
			delay(p, 20*sim.NS)
		}
		rec.Logf(p, "writer done")
	})
	k.Thread("reader", func(p *sim.Process) {
		for i := 1; i <= 3; i++ {
			v := f.Read()
			rec.Logf(p, "read %d", v)
			delay(p, 15*sim.NS)
		}
		rec.Logf(p, "reader done")
	})

	k.Run(sim.RunForever)
	fmt.Printf("--- %s (%d context switches) ---\n", title, k.Stats().ContextSwitches)
	for _, e := range rec.Entries() {
		fmt.Printf("  %v\n", e)
	}
	return rec
}

func main() {
	ref := run("reference: regular FIFO + wait (Fig. 2)", false, false)
	naive := run("naive: regular FIFO + inc, no sync (Fig. 3)", true, false)
	smart := run("Smart FIFO + inc (paper §III)", true, true)

	fmt.Println()
	if d := trace.Diff(ref, naive); d != "" {
		fmt.Println("naive decoupling vs reference: TIMING BROKEN, as the paper warns:")
		fmt.Println(" ", d)
	}
	if d := trace.Diff(ref, smart); d != "" {
		fmt.Println("Smart FIFO vs reference: UNEXPECTED DIFFERENCE:", d)
	} else {
		fmt.Println("Smart FIFO vs reference: traces identical after date reordering —")
		fmt.Println("same behaviour, same timing, fewer context switches.")
	}
}
