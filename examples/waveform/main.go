// Waveform: dump Smart FIFO fill levels to a VCD file for a waveform
// viewer (GTKWave etc.). The probe reads levels through the monitor
// interface (§III-C), so what lands in the waveform is exactly what the
// modeled embedded software would read at each date — even though the
// producer and consumer run far ahead of the global clock.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/vcd"
)

func main() {
	out := flag.String("o", "fifolevels.vcd", "output VCD file")
	flag.Parse()

	k := sim.NewKernel("waveform")
	f1 := core.NewSmart[int](k, "f1", 16)
	f2 := core.NewSmart[int](k, "f2", 8)

	const n = 400
	k.Thread("source", func(p *sim.Process) {
		for i := 0; i < n; i++ {
			f1.Write(i)
			// Bursty: 20 fast words, then a gap.
			if (i+1)%20 == 0 {
				p.Inc(300 * sim.NS)
			} else {
				p.Inc(5 * sim.NS)
			}
		}
	})
	k.Thread("relay", func(p *sim.Process) {
		for i := 0; i < n; i++ {
			v := f1.Read()
			p.Inc(12 * sim.NS)
			f2.Write(v)
		}
	})
	k.Thread("sink", func(p *sim.Process) {
		for i := 0; i < n; i++ {
			f2.Read()
			p.Inc(15 * sim.NS)
		}
	})

	file, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer file.Close()
	w := vcd.NewWriter(file)
	const horizon = 10 * sim.US
	vcd.ProbeFIFO(k, w, f1, "f1.level", 25*sim.NS, horizon)
	vcd.ProbeFIFO(k, w, f2, "f2.level", 25*sim.NS, horizon)

	k.Run(sim.RunForever)
	k.Shutdown()
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %v, wrote %s (open with a VCD viewer)\n", k.Now(), *out)
	fmt.Printf("f1: %d writes, %d reader blocks; f2: %d writes, %d writer blocks\n",
		f1.Stats().Writes, f1.Stats().ReaderBlocks, f2.Stats().Writes, f2.Stats().WriterBlocks)
}
